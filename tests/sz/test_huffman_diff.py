"""Differential tests: two-queue tree build and length-limited codes.

``_huffman_lengths_ref`` is the original heapq construction kept as an
oracle; ``_huffman_lengths`` is the O(n) two-queue build that replaced
it on the hot path.  Because the tie-break rule is reproduced exactly,
the two must agree *bit-for-bit* on every frequency table — the code
lengths feed canonical codeword assignment, which feeds the frozen
v2/v3 wire format, so any divergence would silently change frame
bytes.  Length-limited codes (``build_code(..., max_len=)``) are new
wire behaviour and are checked against first principles instead:
Kraft, depth bound, prefix-freeness and bit-exact round-trips through
the reference packer.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz import huffman
from repro.sz.bitstream import PackedBits, pack_codes_ref
from repro.sz.compressor import SZCompressor
from repro.sz.huffman import (
    DEPTH_LIMIT_BITS,
    MAX_CODE_LEN,
    _canonical_codewords,
    _canonical_codewords_ref,
    _huffman_lengths,
    _huffman_lengths_ref,
    _rebalance_lengths,
    build_code,
)

freq_tables = st.lists(
    st.integers(min_value=1, max_value=1 << 40), min_size=2, max_size=200
)
# Small value range forces heavy ties — the regime where a wrong
# tie-break rule in the two-queue build would diverge from the heap.
tied_freq_tables = st.lists(
    st.integers(min_value=1, max_value=4), min_size=2, max_size=200
)


def _kraft(lengths: np.ndarray) -> float:
    return float(np.sum(2.0 ** -lengths.astype(np.float64)))


def _assert_prefix_free(code: huffman.HuffmanCode) -> None:
    width = int(code.lengths.max())
    lj = code.codewords.astype(np.uint64) << (
        np.uint64(width) - code.lengths.astype(np.uint64)
    )
    order = np.argsort(lj)
    lj, ln = lj[order], code.lengths.astype(np.uint64)[order]
    # Left-justified canonical codewords are strictly increasing and
    # no codeword may fall inside the span of the previous one.
    assert (np.diff(lj.astype(np.int64)) > 0).all()
    spans = lj + (np.uint64(1) << (np.uint64(width) - ln))
    assert (lj[1:] >= spans[:-1]).all()


class TestTwoQueueVsHeap:
    @given(freq_tables)
    @settings(max_examples=150, deadline=None)
    def test_lengths_bit_identical(self, freqs):
        f = np.asarray(freqs, dtype=np.int64)
        np.testing.assert_array_equal(
            _huffman_lengths(f), _huffman_lengths_ref(f)
        )

    @given(tied_freq_tables)
    @settings(max_examples=150, deadline=None)
    def test_lengths_bit_identical_under_ties(self, freqs):
        f = np.asarray(freqs, dtype=np.int64)
        np.testing.assert_array_equal(
            _huffman_lengths(f), _huffman_lengths_ref(f)
        )

    @given(freq_tables)
    @settings(max_examples=80, deadline=None)
    def test_kraft_equality(self, freqs):
        # An unconstrained Huffman tree is Kraft-complete exactly.
        lengths = _huffman_lengths(np.asarray(freqs, dtype=np.int64))
        assert _kraft(lengths) == pytest.approx(1.0, abs=1e-12)

    def test_large_zipf_table(self):
        rng = np.random.default_rng(7)
        f = np.sort(rng.zipf(1.3, 20_000).astype(np.int64))[::-1].copy()
        np.testing.assert_array_equal(
            _huffman_lengths(f), _huffman_lengths_ref(f)
        )

    def test_two_symbols(self):
        f = np.array([5, 5], dtype=np.int64)
        np.testing.assert_array_equal(_huffman_lengths(f), [1, 1])


class TestCanonicalCodewords:
    @given(freq_tables)
    @settings(max_examples=100, deadline=None)
    def test_vectorized_matches_reference(self, freqs):
        lengths = _huffman_lengths(np.asarray(freqs, dtype=np.int64))
        np.testing.assert_array_equal(
            _canonical_codewords(lengths),
            _canonical_codewords_ref(lengths),
        )

    def test_single_symbol_code(self):
        lengths = np.array([1], dtype=np.int64)
        np.testing.assert_array_equal(
            _canonical_codewords(lengths),
            _canonical_codewords_ref(lengths),
        )


class TestLengthLimited:
    @given(freq_tables, st.integers(min_value=6, max_value=DEPTH_LIMIT_BITS))
    @settings(max_examples=100, deadline=None)
    def test_kraft_and_depth_bound(self, freqs, max_len):
        f = np.asarray(freqs, dtype=np.int64)
        if len(freqs) > (1 << max_len):  # pragma: no cover - size cap
            return
        lengths = _rebalance_lengths(_huffman_lengths(f), f, max_len)
        assert int(lengths.max()) <= max_len
        assert (lengths >= 1).all()
        assert _kraft(lengths) <= 1.0 + 1e-12

    @given(freq_tables, st.integers(min_value=6, max_value=DEPTH_LIMIT_BITS))
    @settings(max_examples=60, deadline=None)
    def test_monotone_lengths(self, freqs, max_len):
        # A strictly rarer symbol never gets a shorter code than a
        # commoner one (within tie groups anything goes).
        f = np.asarray(freqs, dtype=np.int64)
        if len(freqs) > (1 << max_len):  # pragma: no cover - size cap
            return
        symbols = np.arange(len(freqs), dtype=np.int64)
        code = build_code(symbols, f, max_len=max_len)
        order = np.argsort(-f, kind="stable")
        fs = f[order]
        ls = code.lengths.astype(np.int64)[order]
        for k in np.nonzero(np.diff(fs) < 0)[0] + 1:
            assert ls[:k].max() <= ls[k:].min()

    def test_already_shallow_table_unchanged(self):
        f = np.array([8, 4, 2, 1, 1], dtype=np.int64)
        base = _huffman_lengths(f)
        np.testing.assert_array_equal(
            _rebalance_lengths(base, f, DEPTH_LIMIT_BITS), base
        )

    def test_infeasible_alphabet_raises(self):
        n = (1 << 6) + 1
        f = np.ones(n, dtype=np.int64)
        with pytest.raises(ValueError, match="alphabet"):
            _rebalance_lengths(_huffman_lengths(f), f, 6)

    def test_build_code_rejects_bad_max_len(self):
        symbols = np.arange(4, dtype=np.int64)
        f = np.array([4, 3, 2, 1], dtype=np.int64)
        for bad in (0, -1, DEPTH_LIMIT_BITS + 1):
            with pytest.raises(ValueError):
                build_code(symbols, f, max_len=bad)

    def test_default_max_len_is_unlimited_path(self):
        # build_code() without max_len must keep emitting the exact
        # historical lengths (MAX_CODE_LEN cap) — frozen wire format.
        rng = np.random.default_rng(3)
        f = rng.zipf(1.2, 5000).astype(np.int64)
        symbols = np.arange(f.size, dtype=np.int64)
        code = build_code(symbols, f)
        np.testing.assert_array_equal(
            code.lengths.astype(np.int64),
            huffman._limit_lengths(_huffman_lengths(f), f, MAX_CODE_LEN),
        )

    @given(st.integers(min_value=0, max_value=2**31), st.integers(8, 16))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_bit_exact(self, seed, max_len):
        rng = np.random.default_rng(seed)
        n_sym = int(rng.integers(2, min(300, 1 << max_len)))
        symbols = np.unique(rng.integers(-1000, 1000, size=n_sym))
        f = rng.zipf(1.5, symbols.size).astype(np.int64)
        code = build_code(symbols, f, max_len=max_len)
        _assert_prefix_free(code)
        values = rng.choice(symbols, size=2000, p=f / f.sum())
        packed = huffman.encode(values, code)
        # The reference packer pins the bytes; the fast decoder must
        # read them back exactly.
        idx = np.searchsorted(code.symbols, values)
        ref = pack_codes_ref(code.codewords[idx], code.lengths[idx].astype(np.int64))
        assert packed.data == ref.data and packed.n_bits == ref.n_bits
        np.testing.assert_array_equal(
            huffman.decode(packed, code, values.size), values
        )


class TestEncodeLookup:
    def _reference_lookup(self, code, values):
        idx = np.searchsorted(code.symbols, values)
        return code.codewords[idx], code.lengths[idx].astype(np.int64)

    def test_dense_lut_matches_searchsorted(self):
        rng = np.random.default_rng(11)
        symbols = np.arange(-500, 500, dtype=np.int64)  # contiguous → dense
        f = rng.integers(1, 100, size=symbols.size).astype(np.int64)
        code = build_code(symbols, f)
        codec = huffman.codec_for(code)
        assert codec._encode_tables()[0] == "dense"
        values = rng.choice(symbols, size=5000)
        cw, ln = codec.lookup(values)
        rcw, rln = self._reference_lookup(code, values)
        np.testing.assert_array_equal(cw, rcw)
        np.testing.assert_array_equal(ln, rln)

    def test_sparse_fallback_matches_searchsorted(self):
        rng = np.random.default_rng(12)
        symbols = np.unique(rng.integers(-10**9, 10**9, size=400))
        f = rng.integers(1, 100, size=symbols.size).astype(np.int64)
        code = build_code(symbols, f)
        codec = huffman.codec_for(code)
        assert codec._encode_tables()[0] == "sparse"
        values = rng.choice(symbols, size=5000)
        cw, ln = codec.lookup(values)
        rcw, rln = self._reference_lookup(code, values)
        np.testing.assert_array_equal(cw, rcw)
        np.testing.assert_array_equal(ln, rln)

    @pytest.mark.parametrize("dense", [True, False])
    def test_unknown_value_rejected(self, dense):
        if dense:
            symbols = np.arange(16, dtype=np.int64)
        else:
            symbols = np.arange(16, dtype=np.int64) * 10**6
        f = np.arange(1, 17, dtype=np.int64)
        codec = huffman.codec_for(build_code(symbols, f))
        bad = np.array([int(symbols[0]) + 1 if not dense else 999])
        with pytest.raises(ValueError, match="alphabet"):
            codec.lookup(bad)


class TestDepthLimitedFrames:
    def _field(self, shape=(128, 128), seed=0):
        rng = np.random.default_rng(seed)
        return np.cumsum(
            rng.standard_normal(shape), axis=1
        ).astype(np.float32)

    def test_flag_set_and_round_trip(self):
        data = self._field()
        sc = SZCompressor(1e-3, depth_limit=12)
        frame = sc.compress(data)
        info = SZCompressor.parse_meta(frame.sections["meta"])
        assert info["depth_limited"] is True
        out = sc.decompress(frame)
        np.testing.assert_allclose(out, data, atol=1e-3)

    def test_default_frames_unflagged_and_identical(self):
        data = self._field(seed=5)
        plain = SZCompressor(1e-3).compress(data)
        info = SZCompressor.parse_meta(plain.sections["meta"])
        assert info["depth_limited"] is False
        again = SZCompressor(1e-3).compress(data)
        assert plain.sections == again.sections

    def test_alphabet_too_large_falls_back_silently(self):
        # depth_limit=1 admits at most 2 symbols; any real field has
        # more, so the encoder must emit a normal unflagged frame.
        data = self._field(seed=6)
        sc = SZCompressor(1e-3, depth_limit=1)
        frame = sc.compress(data)
        info = SZCompressor.parse_meta(frame.sections["meta"])
        assert info["depth_limited"] is False
        np.testing.assert_allclose(
            sc.decompress(frame), data, atol=1e-3
        )

    def test_constructor_validates_depth_limit(self):
        with pytest.raises(ValueError, match="depth_limit"):
            SZCompressor(1e-3, depth_limit=0)
        with pytest.raises(ValueError, match="depth_limit"):
            SZCompressor(1e-3, depth_limit=DEPTH_LIMIT_BITS + 1)

    def test_unknown_meta_flag_rejected(self):
        frame = SZCompressor(1e-3).compress(self._field(seed=7))
        meta = bytearray(frame.sections["meta"])
        meta[7] |= 0x04
        with pytest.raises(ValueError, match="flags"):
            SZCompressor.parse_meta(bytes(meta))

    def test_lying_depth_flag_rejected(self):
        # A flagged frame whose tree is deeper than DEPTH_LIMIT_BITS is
        # corrupt by definition (FORMAT.md §3) and must not decode.
        from repro.sz.compressor import _check_depth_flag

        rng = np.random.default_rng(8)
        f = rng.zipf(1.1, 30_000).astype(np.int64)
        symbols = np.arange(f.size, dtype=np.int64)
        deep = build_code(symbols, f)
        assert int(deep.lengths.max()) > DEPTH_LIMIT_BITS
        with pytest.raises(ValueError, match="depth-limited"):
            _check_depth_flag({"depth_limited": True}, deep)
        _check_depth_flag({"depth_limited": False}, deep)

    def test_depth_limited_counter(self):
        from repro.core import trace

        data = self._field(seed=9)
        before = trace.counters_snapshot().get(
            "huffman.depth_limited_frames", 0
        )
        SZCompressor(1e-3, depth_limit=12).compress(data)
        after = trace.counters_snapshot().get(
            "huffman.depth_limited_frames", 0
        )
        assert after == before + 1
