"""The SZ compressor façade: roundtrips, the error-bound guarantee,
frame structure and statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz import SZCompressor
from repro.sz.compressor import SECTION_ORDER
from repro.sz.quantizer import ErrorBound


def _max_err(a, b):
    return float(np.max(np.abs(a.astype(np.float64) - b.astype(np.float64))))


class TestRoundTrip:
    @pytest.mark.parametrize("eb", [1e-2, 1e-4, 1e-6])
    def test_smooth_field(self, smooth_field, eb):
        comp = SZCompressor(eb)
        out = comp.decompress(comp.compress(smooth_field))
        assert out.shape == smooth_field.shape
        assert out.dtype == smooth_field.dtype
        assert _max_err(out, smooth_field) <= eb

    @pytest.mark.parametrize("eb", [1e-2, 1e-5])
    def test_noisy_field(self, noisy_field, eb):
        comp = SZCompressor(eb)
        out = comp.decompress(comp.compress(noisy_field))
        assert _max_err(out, noisy_field) <= eb

    def test_sparse_field(self, sparse_field):
        comp = SZCompressor(1e-5)
        out = comp.decompress(comp.compress(sparse_field))
        assert _max_err(out, sparse_field) <= 1e-5

    @pytest.mark.parametrize("predictor", ["lorenzo", "mean", "regression"])
    def test_each_predictor(self, smooth_field, predictor):
        comp = SZCompressor(1e-4, predictor=predictor)
        frame = comp.compress(smooth_field)
        assert frame.stats.predictor == predictor
        out = comp.decompress(frame)
        assert _max_err(out, smooth_field) <= 1e-4

    @pytest.mark.parametrize("ndim", [1, 2, 3, 4])
    def test_each_dimensionality(self, rng, ndim):
        shape = (7, 9, 5, 6)[:ndim]
        data = rng.standard_normal(shape).astype(np.float32)
        comp = SZCompressor(1e-3)
        out = comp.decompress(comp.compress(data))
        assert out.shape == data.shape
        assert _max_err(out, data) <= 1e-3

    def test_float64(self, rng):
        data = rng.standard_normal((12, 12, 12))
        comp = SZCompressor(1e-9)
        out = comp.decompress(comp.compress(data))
        assert out.dtype == np.float64
        assert _max_err(out, data) <= 1e-9

    def test_relative_bound(self, smooth_field):
        comp = SZCompressor(ErrorBound(1e-3, "rel"))
        frame = comp.compress(smooth_field)
        value_range = float(smooth_field.max() - smooth_field.min())
        out = comp.decompress(frame)
        assert _max_err(out, smooth_field) <= 1e-3 * value_range
        assert frame.stats.eb_abs == pytest.approx(1e-3 * value_range)

    def test_constant_field(self):
        data = np.full((10, 10), 3.5, dtype=np.float32)
        comp = SZCompressor(1e-4)
        out = comp.decompress(comp.compress(data))
        assert _max_err(out, data) <= 1e-4

    def test_tight_bound_with_exact_channel(self, rng):
        # eb below float32 ulp for these magnitudes: the exact channel
        # must keep the user-facing bound intact anyway.
        data = (rng.standard_normal(4096) * 8).astype(np.float32)
        comp = SZCompressor(1e-7)
        frame = comp.compress(data)
        out = comp.decompress(frame)
        assert _max_err(out, data) <= 1e-7


class TestFrameStructure:
    def test_sections_present(self, smooth_field):
        frame = SZCompressor(1e-3).compress(smooth_field)
        assert set(frame.sections) == set(SECTION_ORDER)

    def test_stats_consistency(self, smooth_field):
        frame = SZCompressor(1e-3).compress(smooth_field)
        stats = frame.stats
        assert stats.n_elements == smooth_field.size
        assert 0 <= stats.unpredictable_count <= stats.n_elements
        assert stats.predictable_count + stats.unpredictable_count == stats.n_elements
        assert 0.0 <= stats.predictable_fraction <= 1.0
        assert stats.quant_array_bytes == (
            stats.section_bytes["tree"] + stats.section_bytes["codes"]
        )
        assert 0.0 <= stats.tree_fraction_of_quant <= 1.0
        assert frame.payload_bytes == sum(stats.section_bytes.values())

    def test_stage_times_recorded(self, smooth_field):
        frame = SZCompressor(1e-3).compress(smooth_field)
        for stage in ("quantize", "predict", "huffman_build",
                      "huffman_encode", "side_channels"):
            assert stage in frame.stats.stage_seconds
            assert frame.stats.stage_seconds[stage] >= 0.0

    def test_decompress_stage_times(self, smooth_field):
        comp = SZCompressor(1e-3)
        frame = comp.compress(smooth_field)
        times: dict = {}
        comp.decompress(frame, times)
        assert "huffman_decode" in times
        assert "reconstruct" in times

    def test_coeffs_only_for_regression(self, smooth_field):
        lorenzo = SZCompressor(1e-3, predictor="lorenzo").compress(smooth_field)
        regression = SZCompressor(1e-3, predictor="regression").compress(
            smooth_field
        )
        assert lorenzo.sections["coeffs"] == b""
        assert len(regression.sections["coeffs"]) > 0

    def test_frame_missing_section_rejected(self, smooth_field):
        from repro.sz.compressor import SZFrame
        frame = SZCompressor(1e-3).compress(smooth_field)
        sections = dict(frame.sections)
        del sections["tree"]
        with pytest.raises(ValueError, match="missing"):
            SZFrame(sections=sections, stats=frame.stats)


class TestValidation:
    def test_rejects_bad_dtype(self):
        comp = SZCompressor(1e-3)
        with pytest.raises(TypeError, match="dtype"):
            comp.compress(np.zeros(10, dtype=np.int32))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            SZCompressor(1e-3).compress(np.empty(0, dtype=np.float32))

    def test_rejects_5d(self):
        with pytest.raises(ValueError, match="1-4"):
            SZCompressor(1e-3).compress(np.zeros((2,) * 5, dtype=np.float32))

    def test_rejects_unknown_predictor(self):
        with pytest.raises(ValueError, match="predictor"):
            SZCompressor(1e-3, predictor="dct")

    def test_rejects_tiny_block(self):
        with pytest.raises(ValueError, match="block_size"):
            SZCompressor(1e-3, block_size=1)

    def test_meta_corruption_detected(self, smooth_field):
        comp = SZCompressor(1e-3)
        frame = comp.compress(smooth_field)
        bad = bytearray(frame.sections["meta"])
        bad[0] ^= 0xFF  # break the magic
        frame.sections["meta"] = bytes(bad)
        with pytest.raises(ValueError, match="magic"):
            comp.decompress(frame)

    def test_meta_truncation_detected(self, smooth_field):
        comp = SZCompressor(1e-3)
        frame = comp.compress(smooth_field)
        frame.sections["meta"] = frame.sections["meta"][:10]
        with pytest.raises(ValueError):
            comp.decompress(frame)

    def test_unpred_mismatch_detected(self, noisy_field):
        comp = SZCompressor(1e-6, predictor="lorenzo")
        frame = comp.compress(noisy_field)
        if frame.stats.unpredictable_count == 0:
            pytest.skip("no unpredictable points in this configuration")
        from repro.sz import intcodec
        frame.sections["unpred"] = intcodec.byteplane_encode(
            np.zeros(1, dtype=np.int64)
        )
        with pytest.raises(ValueError):
            comp.decompress(frame)


class TestCompressionBehaviour:
    def test_looser_bound_compresses_better(self, smooth_field):
        tight = SZCompressor(1e-6).compress(smooth_field).payload_bytes
        loose = SZCompressor(1e-2).compress(smooth_field).payload_bytes
        assert loose < tight

    def test_smooth_beats_noise(self, smooth_field, noisy_field):
        eb = 1e-4
        smooth_bpp = (
            SZCompressor(eb).compress(smooth_field).payload_bytes
            / smooth_field.size
        )
        noisy_bpp = (
            SZCompressor(eb).compress(noisy_field).payload_bytes
            / noisy_field.size
        )
        assert smooth_bpp < noisy_bpp

    def test_auto_selects_reasonably(self, smooth_field):
        frame = SZCompressor(1e-4, predictor="auto").compress(smooth_field)
        assert frame.stats.predictor in ("lorenzo", "mean", "regression")


@given(
    seed=st.integers(0, 2**32 - 1),
    eb=st.sampled_from([1e-2, 1e-3, 1e-5]),
    shape=st.sampled_from([(64,), (9, 13), (6, 7, 8)]),
    predictor=st.sampled_from(["auto", "lorenzo", "mean", "regression"]),
)
@settings(max_examples=40, deadline=None)
def test_error_bound_property(seed, eb, shape, predictor):
    """The central invariant: |decompressed - original| <= eb, always."""
    gen = np.random.default_rng(seed)
    data = (gen.standard_normal(shape) * gen.uniform(0.1, 100)).astype(
        np.float32
    )
    comp = SZCompressor(eb, predictor=predictor)
    out = comp.decompress(comp.compress(data))
    assert out.shape == data.shape
    assert _max_err(out, data) <= eb


class TestCoverageParameter:
    def test_lower_coverage_more_unpredictable(self, noisy_field):
        tight = SZCompressor(1e-5, coverage=0.999).compress(noisy_field)
        loose = SZCompressor(1e-5, coverage=0.5).compress(noisy_field)
        assert (
            loose.stats.unpredictable_count
            >= tight.stats.unpredictable_count
        )
        # Both still satisfy the bound, via different channel balances.
        for frame in (tight, loose):
            out = SZCompressor(1e-5).decompress(frame)
            assert _max_err(out, noisy_field) <= 1e-5

    def test_coverage_changes_radius(self, noisy_field):
        tight = SZCompressor(1e-5, coverage=0.9999).compress(noisy_field)
        loose = SZCompressor(1e-5, coverage=0.6).compress(noisy_field)
        assert loose.stats.radius <= tight.stats.radius
