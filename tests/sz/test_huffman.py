"""Canonical Huffman coding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz import huffman
from repro.sz.bitstream import PackedBits


def _code_for(values: np.ndarray) -> huffman.HuffmanCode:
    symbols, counts = np.unique(values, return_counts=True)
    return huffman.build_code(symbols, counts)


class TestBuildCode:
    def test_single_symbol(self):
        code = huffman.build_code(np.array([7]), np.array([100]))
        assert code.n_symbols == 1
        assert code.lengths[0] == 1

    def test_two_symbols_one_bit_each(self):
        code = huffman.build_code(np.array([1, 2]), np.array([3, 5]))
        assert list(code.lengths) == [1, 1]
        assert set(int(c) for c in code.codewords) == {0, 1}

    def test_skewed_frequencies_give_short_code_to_common(self):
        code = huffman.build_code(
            np.array([0, 1, 2, 3]), np.array([1000, 10, 10, 10])
        )
        idx = int(np.searchsorted(code.symbols, 0))
        assert code.lengths[idx] == min(code.lengths)

    def test_kraft_inequality(self):
        rng = np.random.default_rng(0)
        freqs = rng.integers(1, 10_000, size=500)
        code = huffman.build_code(np.arange(500), freqs)
        kraft = (2.0 ** (-code.lengths.astype(float))).sum()
        assert kraft <= 1.0 + 1e-12

    def test_prefix_free(self):
        rng = np.random.default_rng(1)
        freqs = rng.integers(1, 1000, size=64)
        code = huffman.build_code(np.arange(64), freqs)
        words = [
            format(int(c), f"0{int(l)}b")
            for c, l in zip(code.codewords, code.lengths)
        ]
        for i, a in enumerate(words):
            for j, b in enumerate(words):
                if i != j:
                    assert not b.startswith(a)

    def test_length_limited(self):
        # Fibonacci-like frequencies force deep optimal trees; the
        # limiter must cap at MAX_CODE_LEN while staying decodable.
        freqs = [1, 1]
        while len(freqs) < 40:
            freqs.append(freqs[-1] + freqs[-2])
        code = huffman.build_code(np.arange(len(freqs)), np.array(freqs))
        assert int(code.lengths.max()) <= huffman.MAX_CODE_LEN
        kraft = (2.0 ** (-code.lengths.astype(float))).sum()
        assert kraft <= 1.0 + 1e-12

    def test_optimality_against_entropy(self):
        rng = np.random.default_rng(2)
        freqs = rng.integers(1, 5000, size=128).astype(np.float64)
        code = huffman.build_code(np.arange(128), freqs.astype(np.int64))
        p = freqs / freqs.sum()
        entropy = -(p * np.log2(p)).sum()
        assert entropy <= code.mean_length(freqs) <= entropy + 1.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError, match="align"):
            huffman.build_code(np.array([1, 2]), np.array([1]))
        with pytest.raises(ValueError, match="positive"):
            huffman.build_code(np.array([1]), np.array([0]))
        with pytest.raises(ValueError, match="distinct"):
            huffman.build_code(np.array([1, 1]), np.array([1, 1]))

    def test_empty_alphabet(self):
        code = huffman.build_code(np.empty(0, np.int64), np.empty(0, np.int64))
        assert code.n_symbols == 0


class TestEncodeDecode:
    def test_roundtrip_simple(self):
        values = np.array([1, 2, 1, 1, 3, 2, 1], dtype=np.int64)
        code = _code_for(values)
        packed = huffman.encode(values, code)
        out = huffman.decode(packed, code, len(values))
        assert np.array_equal(out, values)

    def test_roundtrip_large_skewed(self):
        rng = np.random.default_rng(3)
        values = rng.zipf(1.5, size=20_000).astype(np.int64)
        values = np.clip(values, 1, 1 << 20)
        code = _code_for(values)
        packed = huffman.encode(values, code)
        assert np.array_equal(huffman.decode(packed, code, values.size), values)

    def test_roundtrip_negative_symbols(self):
        values = np.array([-5, 3, -5, 0, 3, -5], dtype=np.int64)
        code = _code_for(values)
        packed = huffman.encode(values, code)
        assert np.array_equal(huffman.decode(packed, code, values.size), values)

    def test_long_codes_beyond_table_bits(self):
        # Force codeword lengths above TABLE_BITS so the long-code
        # fallback path decodes too.
        n = 1 << 14  # enough leaves to exceed 12-bit codes
        freqs = np.ones(n, dtype=np.int64)
        freqs[0] = 10_000_000
        code = huffman.build_code(np.arange(n), freqs)
        assert int(code.lengths.max()) > huffman.TABLE_BITS
        rng = np.random.default_rng(4)
        values = rng.integers(0, n, size=3000).astype(np.int64)
        packed = huffman.encode(values, code)
        assert np.array_equal(huffman.decode(packed, code, values.size), values)

    def test_encode_rejects_unknown_symbol(self):
        code = _code_for(np.array([1, 2, 3], dtype=np.int64))
        with pytest.raises(ValueError, match="alphabet"):
            huffman.encode(np.array([4], dtype=np.int64), code)

    def test_decode_empty(self):
        code = _code_for(np.array([1], dtype=np.int64))
        out = huffman.decode(PackedBits(data=b"", n_bits=0), code, 0)
        assert out.size == 0

    def test_decode_truncated_stream_raises(self):
        values = np.arange(64, dtype=np.int64).repeat(4)
        code = _code_for(values)
        packed = huffman.encode(values, code)
        short = PackedBits(
            data=packed.data[: len(packed.data) // 4],
            n_bits=8 * (len(packed.data) // 4),
        )
        with pytest.raises(ValueError):
            huffman.decode(short, code, values.size)

    def test_encoded_size_tracks_entropy(self):
        rng = np.random.default_rng(5)
        uniform = rng.integers(0, 256, size=8192).astype(np.int64)
        skewed = (rng.zipf(2.0, size=8192) % 256).astype(np.int64)
        bits_uniform = huffman.encode(uniform, _code_for(uniform)).n_bits
        bits_skewed = huffman.encode(skewed, _code_for(skewed)).n_bits
        assert bits_skewed < bits_uniform


class TestTreeSerialization:
    def test_roundtrip(self):
        values = np.array([-100, 3, 3, 7, -100, 12345], dtype=np.int64)
        code = _code_for(values)
        restored = huffman.deserialize_tree(huffman.serialize_tree(code))
        assert np.array_equal(restored.symbols, code.symbols)
        assert np.array_equal(restored.lengths, code.lengths)
        assert np.array_equal(restored.codewords, code.codewords)

    def test_decode_with_restored_tree(self):
        rng = np.random.default_rng(6)
        values = rng.integers(-50, 50, size=5000).astype(np.int64)
        code = _code_for(values)
        packed = huffman.encode(values, code)
        restored = huffman.deserialize_tree(huffman.serialize_tree(code))
        assert np.array_equal(
            huffman.decode(packed, restored, values.size), values
        )

    def test_empty_tree(self):
        code = huffman.build_code(np.empty(0, np.int64), np.empty(0, np.int64))
        restored = huffman.deserialize_tree(huffman.serialize_tree(code))
        assert restored.n_symbols == 0

    def test_rejects_truncated(self):
        code = _code_for(np.arange(10, dtype=np.int64))
        blob = huffman.serialize_tree(code)
        with pytest.raises(ValueError):
            huffman.deserialize_tree(blob[:3])
        with pytest.raises(ValueError):
            huffman.deserialize_tree(blob[:-2])

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            huffman.deserialize_tree(b"\xff" * 40)

    def test_tree_size_scales_with_alphabet(self):
        small = huffman.serialize_tree(_code_for(np.arange(4, dtype=np.int64)))
        big = huffman.serialize_tree(_code_for(np.arange(400, dtype=np.int64)))
        assert len(big) > len(small)


@given(
    seed=st.integers(0, 2**32 - 1),
    n_symbols=st.integers(1, 200),
    n_values=st.integers(1, 2000),
)
@settings(max_examples=30, deadline=None)
def test_huffman_roundtrip_property(seed, n_symbols, n_values):
    rng = np.random.default_rng(seed)
    symbols = np.unique(rng.integers(-(2**40), 2**40, size=n_symbols))
    values = rng.choice(symbols, size=n_values)
    code = _code_for(values)
    packed = huffman.encode(values, code)
    restored = huffman.deserialize_tree(huffman.serialize_tree(code))
    assert np.array_equal(huffman.decode(packed, restored, values.size), values)


class TestFastDecodeTable:
    def _roundtrip_both_paths(self, values):
        """Decode once via the gated fast path and once with it forced
        off; both must reproduce the input exactly."""
        code = _code_for(values)
        packed = huffman.encode(values, code)
        fast = huffman.decode(packed, code, values.size)

        decoder = huffman._Decoder(code)
        # Force the slow path by making the gate condition false.
        original = huffman.PackedBits if False else None  # noqa: F841
        import types

        slow_out = None
        real_decode = huffman._Decoder.decode

        def patched(self, pck, n):
            # Temporarily raise t_bits gate: emulate by monkeypatching
            # the fast attributes to empty tuples (k is never > 1).
            self._fast_syms = [()] * (1 << self.t_bits)
            self._fast_bits = [0] * (1 << self.t_bits)
            return real_decode(self, pck, n)

        slow_out = patched(decoder, packed, values.size)
        assert np.array_equal(fast, values)
        assert np.array_equal(slow_out, values)

    def test_paths_agree_highly_skewed(self):
        rng = np.random.default_rng(11)
        values = np.zeros(30_000, dtype=np.int64)
        spots = rng.random(values.size) > 0.97
        values[spots] = rng.integers(1, 50, size=int(spots.sum()))
        self._roundtrip_both_paths(values)

    def test_paths_agree_flat(self):
        rng = np.random.default_rng(12)
        values = rng.integers(0, 4096, size=20_000).astype(np.int64)
        self._roundtrip_both_paths(values)

    def test_fast_table_contents(self):
        # Two 1-bit symbols: a 12-bit window holds 12 of them.
        values = np.array([0, 1] * 100, dtype=np.int64)
        code = _code_for(values)
        decoder = huffman._Decoder(code)
        decoder._build_fast_table()
        for w, (syms, bits) in enumerate(
            zip(decoder._fast_syms, decoder._fast_bits)
        ):
            assert len(syms) == decoder.t_bits
            assert bits == decoder.t_bits

    def test_gate_uses_stream_density(self):
        # A stream whose bits/symbol exceeds t_bits/2 must not build
        # the fast table.
        rng = np.random.default_rng(13)
        values = rng.integers(0, 1 << 14, size=5000).astype(np.int64)
        code = _code_for(values)
        packed = huffman.encode(values, code)
        decoder = huffman._Decoder(code)
        assert packed.n_bits / values.size > decoder.t_bits / 2
        out = decoder.decode(packed, values.size)
        assert np.array_equal(out, values)
        assert not hasattr(decoder, "_fast_syms")
