"""The multi-lane Huffman format (frame v3) and its vectorized kernel."""

import struct

import numpy as np
import pytest

from repro.sz import fastdecode, huffman
from repro.sz.bitstream import concat_streams, sliding_window_u32
from repro.sz.compressor import SZCompressor


def _encode(values, n_lanes, stride):
    symbols, counts = np.unique(values, return_counts=True)
    code = huffman.build_code(symbols, counts)
    enc = huffman.encode_lanes(values, code, n_lanes, stride)
    return code, enc, concat_streams(list(enc.lanes))


def _roundtrip(values, n_lanes, stride):
    code, enc, codes = _encode(values, n_lanes, stride)
    blob = huffman.serialize_lane_tree(code, enc.table)
    code2, table2 = huffman.deserialize_lane_tree(blob, values.size)
    return fastdecode.decode_lanes(codes, code2, table2, values.size)


@pytest.fixture(scope="module")
def skewed_values():
    rng = np.random.default_rng(7)
    return (rng.geometric(0.3, 200_000) + 512).astype(np.int64)


class TestLaneRoundTrip:
    @pytest.mark.parametrize("n_lanes", [1, 4, 16])
    def test_lane_counts(self, skewed_values, n_lanes):
        out = _roundtrip(skewed_values, n_lanes, 1024)
        assert np.array_equal(out, skewed_values)

    @pytest.mark.parametrize("n", [1, 2, 15, 16, 17, 100, 4097])
    def test_awkward_sizes(self, n):
        rng = np.random.default_rng(n)
        values = rng.integers(-50, 50, n).astype(np.int64)
        out = _roundtrip(values, min(16, n), 64)
        assert np.array_equal(out, values)

    def test_stride_smaller_than_lane(self, skewed_values):
        out = _roundtrip(skewed_values[:5000], 4, 16)
        assert np.array_equal(out, skewed_values[:5000])

    def test_stride_larger_than_lane(self, skewed_values):
        # No anchors at all: one segment per lane.
        out = _roundtrip(skewed_values[:5000], 4, 1 << 20)
        assert np.array_equal(out, skewed_values[:5000])

    def test_single_symbol_alphabet(self):
        values = np.full(10_000, -3, dtype=np.int64)
        out = _roundtrip(values, 16, 256)
        assert np.array_equal(out, values)

    def test_long_codes_beyond_table_bits(self):
        # A huge, nearly-uniform alphabet forces codes past TABLE_BITS,
        # exercising the vectorized canonical-search fallback.
        rng = np.random.default_rng(3)
        rare = rng.integers(0, 30_000, 60_000)
        common = np.zeros(90_000, dtype=np.int64)
        values = np.concatenate([rare, common]).astype(np.int64)
        rng.shuffle(values)
        code, _, _ = _encode(values, 16, 512)
        assert int(code.lengths.max()) > huffman.TABLE_BITS
        out = _roundtrip(values, 16, 512)
        assert np.array_equal(out, values)

    def test_matches_scalar_decoder(self, skewed_values):
        values = skewed_values[:30_000]
        code, enc, codes = _encode(values, 1, 1 << 20)
        # One lane, no anchors: the lane stream is byte-identical to
        # the single-stream format the scalar decoder reads.
        packed = enc.lanes[0]
        scalar = huffman.decode(packed, code, values.size)
        table = enc.table
        kernel = fastdecode.decode_lanes(codes, code, table, values.size)
        assert np.array_equal(scalar, kernel)


class TestLaneTableSerialization:
    def test_header_fields_roundtrip(self, skewed_values):
        code, enc, _ = _encode(skewed_values, 16, 2048)
        blob = huffman.serialize_lane_tree(code, enc.table)
        code2, table2 = huffman.deserialize_lane_tree(blob, skewed_values.size)
        assert table2.n_lanes == 16
        assert table2.anchor_stride == 2048
        assert np.array_equal(table2.lane_bits, enc.table.lane_bits)
        for a, b in zip(table2.anchors, enc.table.anchors):
            assert np.array_equal(a, b)
        assert np.array_equal(code2.symbols, code.symbols)
        assert np.array_equal(code2.lengths, code.lengths)

    def test_bad_magic_rejected(self, skewed_values):
        code, enc, _ = _encode(skewed_values[:1000], 4, 256)
        blob = bytearray(huffman.serialize_lane_tree(code, enc.table))
        blob[:4] = b"XXXX"
        with pytest.raises(ValueError, match="magic"):
            huffman.deserialize_lane_tree(bytes(blob), 1000)

    def test_zero_lanes_rejected(self, skewed_values):
        code, enc, _ = _encode(skewed_values[:1000], 4, 256)
        blob = bytearray(huffman.serialize_lane_tree(code, enc.table))
        struct.pack_into("<H", blob, 4, 0)
        with pytest.raises(ValueError, match="[Ll]ane count"):
            huffman.deserialize_lane_tree(bytes(blob), 1000)

    def test_more_lanes_than_symbols_rejected(self, skewed_values):
        code, enc, _ = _encode(skewed_values[:1000], 4, 256)
        blob = huffman.serialize_lane_tree(code, enc.table)
        with pytest.raises(ValueError, match="lanes"):
            huffman.deserialize_lane_tree(blob, 2)

    def test_truncated_table_rejected(self, skewed_values):
        code, enc, _ = _encode(skewed_values[:1000], 4, 256)
        blob = huffman.serialize_lane_tree(code, enc.table)
        with pytest.raises(ValueError):
            huffman.deserialize_lane_tree(blob[:20], 1000)

    def test_anchor_beyond_lane_rejected(self, skewed_values):
        values = skewed_values[:4096]
        code, enc, _ = _encode(values, 1, 1024)
        bad = huffman.LaneTable(
            n_lanes=1,
            anchor_stride=1024,
            lane_bits=enc.table.lane_bits,
            anchors=(enc.table.anchors[0] + int(enc.table.lane_bits[0]),),
        )
        blob = huffman.serialize_lane_tree(code, bad)
        with pytest.raises(ValueError, match="anchor"):
            huffman.deserialize_lane_tree(blob, values.size)


class TestKernelCorruptionRejection:
    def test_codes_length_mismatch(self, skewed_values):
        values = skewed_values[:10_000]
        code, enc, codes = _encode(values, 4, 512)
        with pytest.raises(ValueError, match="length"):
            fastdecode.decode_lanes(codes + b"\x00", code, enc.table, values.size)

    def test_flipped_bits_detected(self, skewed_values):
        # Flip a byte in the middle of lane 0: decoding slips off the
        # codeword lattice and the segment-boundary check fires.  A
        # handful of flips can decode to a *different valid* codeword
        # sequence of the same bit length within one segment — that is
        # information-theoretically undetectable by any entropy coder —
        # so assert on the overwhelmingly common case instead of all.
        values = skewed_values[:50_000]
        code, enc, codes = _encode(values, 4, 512)
        detected = 0
        for pos in range(40, 60):
            corrupt = bytearray(codes)
            corrupt[pos] ^= 0xFF
            try:
                out = fastdecode.decode_lanes(
                    bytes(corrupt), code, enc.table, values.size
                )
                if not np.array_equal(out, values):
                    continue  # silent mis-decode (counted as undetected)
                detected += 1  # decoded identically: flip was in padding
            except ValueError:
                detected += 1
        assert detected >= 15

    def test_truncated_codes_detected(self, skewed_values):
        values = skewed_values[:10_000]
        code, enc, codes = _encode(values, 4, 512)
        with pytest.raises(ValueError):
            fastdecode.decode_lanes(codes[:-8], code, enc.table, values.size)

    def test_wrong_n_values_detected(self, skewed_values):
        values = skewed_values[:10_000]
        code, enc, codes = _encode(values, 4, 512)
        with pytest.raises(ValueError):
            fastdecode.decode_lanes(codes, code, enc.table, values.size - 17)


class TestCompressorIntegration:
    @pytest.mark.parametrize("n_lanes", [1, 4, 16])
    def test_end_to_end_lane_counts(self, n_lanes):
        rng = np.random.default_rng(5)
        field = rng.standard_normal((32, 32, 32)).astype(np.float32)
        comp = SZCompressor(1e-3, huffman_lanes=n_lanes)
        frame = comp.compress(field)
        out = comp.decompress(frame)
        assert np.max(np.abs(out.astype(np.float64) - field)) <= 1e-3 * 1.0001

    def test_auto_lane_selection_scales(self):
        # Lane count scales with the *coded* size, not element count.
        assert huffman.choose_lane_params(100, 400)[0] == 1
        assert huffman.choose_lane_params(1 << 20, 1 << 19)[0] == 4
        assert huffman.choose_lane_params(1 << 20, 1 << 22)[0] == 16
        # Below the lane-format threshold: single lane, no anchors.
        n_lanes, stride = huffman.choose_lane_params(1 << 16, 1 << 17)
        assert n_lanes == 1 and stride >= 1 << 16

    def test_small_payload_emits_v2_frame(self):
        rng = np.random.default_rng(9)
        field = rng.standard_normal((16, 16, 16)).astype(np.float32)
        comp = SZCompressor(1e-3)
        frame = comp.compress(field)
        assert comp.parse_meta(frame.sections["meta"])["version"] == 2
        out = comp.decompress(frame)
        assert np.max(np.abs(out.astype(np.float64) - field)) <= 1e-3 * 1.0001

    def test_explicit_lanes_force_v3_frame(self):
        rng = np.random.default_rng(9)
        field = rng.standard_normal((16, 16, 16)).astype(np.float32)
        comp = SZCompressor(1e-3, huffman_lanes=4)
        frame = comp.compress(field)
        assert comp.parse_meta(frame.sections["meta"])["version"] == 3

    def test_meta_bit_mismatch_rejected(self):
        rng = np.random.default_rng(6)
        field = rng.standard_normal(8192).astype(np.float32)
        comp = SZCompressor(1e-3, huffman_lanes=4)
        frame = comp.compress(field)
        tampered = dict(frame.sections)
        code, table = huffman.deserialize_lane_tree(
            tampered["tree"], field.size
        )
        shrunk = huffman.LaneTable(
            n_lanes=table.n_lanes,
            anchor_stride=table.anchor_stride,
            lane_bits=table.lane_bits - 8,
            anchors=table.anchors,
        )
        tampered["tree"] = huffman.serialize_lane_tree(code, shrunk)
        frame2 = type(frame)(sections=tampered, stats=frame.stats)
        with pytest.raises(ValueError):
            comp.decompress(frame2)


class TestCodecCache:
    def test_decoder_reused_for_same_code(self, skewed_values):
        values = skewed_values[:5000]
        symbols, counts = np.unique(values, return_counts=True)
        code_a = huffman.build_code(symbols, counts)
        code_b = huffman.build_code(symbols, counts)
        # Distinct HuffmanCode objects with equal tables share one codec
        # (and therefore one decoder) process-wide.
        assert huffman.codec_for(code_a) is huffman.codec_for(code_b)
        assert huffman.decoder_for(code_a) is huffman.decoder_for(code_b)

    def test_distinct_codes_get_distinct_decoders(self):
        code_a = huffman.build_code(np.array([1, 2]), np.array([3, 5]))
        code_b = huffman.build_code(np.array([1, 3]), np.array([3, 5]))
        assert huffman.decoder_for(code_a) is not huffman.decoder_for(code_b)

    def test_deserialized_tree_hits_cache(self, skewed_values):
        values = skewed_values[:5000]
        symbols, counts = np.unique(values, return_counts=True)
        code = huffman.build_code(symbols, counts)
        codec = huffman.codec_for(code)
        restored = huffman.deserialize_tree(huffman.serialize_tree(code))
        # Same table digest: the deserialized frame reuses the cached
        # codec's HuffmanCode instead of recomputing codewords.
        assert restored is codec.code

    def test_cache_bounded(self):
        for i in range(3 * huffman._CODEC_CACHE_SIZE):
            code = huffman.build_code(
                np.array([i, i + 1]), np.array([3, 5])
            )
            huffman.decoder_for(code)
        assert len(huffman._codec_cache) <= huffman._CODEC_CACHE_SIZE

    def test_cache_clear(self):
        code = huffman.build_code(np.array([1, 2]), np.array([3, 5]))
        huffman.codec_for(code)
        huffman.codec_cache_clear()
        assert len(huffman._codec_cache) == 0


class TestSlidingWindow:
    def test_windows_match_reference_bits(self):
        rng = np.random.default_rng(11)
        data = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
        win = sliding_window_u32(data)
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        for p in [0, 1, 7, 8, 13, 100, 64 * 8 - 20]:
            w = 12
            ref = int("".join(map(str, bits[p : p + w])), 2)
            got = int(win[p >> 3] >> (32 - w - (p & 7))) & ((1 << w) - 1)
            assert got == ref, p

    def test_padding_extends_matrix(self):
        win = sliding_window_u32(b"\xff", pad_bytes=10)
        assert win.size == 11
        assert win[0] == 0xFF000000
        assert (win[1:] == 0).all()
