"""Bit packing / unpacking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz.bitstream import PackedBits, pack_codes, unpack_bits


class TestPackCodes:
    def test_empty(self):
        packed = pack_codes(np.empty(0, np.uint64), np.empty(0, np.int64))
        assert packed.n_bits == 0
        assert packed.data == b""

    def test_single_bit(self):
        packed = pack_codes(np.array([1], np.uint64), np.array([1]))
        assert packed.n_bits == 1
        assert packed.data == b"\x80"

    def test_known_layout(self):
        # 0b101 (3 bits) then 0b01 (2 bits) -> 10101xxx
        packed = pack_codes(np.array([0b101, 0b01], np.uint64),
                            np.array([3, 2]))
        assert packed.n_bits == 5
        assert packed.data == bytes([0b10101000])

    def test_msb_first_within_code(self):
        packed = pack_codes(np.array([0b100000001], np.uint64), np.array([9]))
        bits = unpack_bits(packed)
        assert list(bits) == [1, 0, 0, 0, 0, 0, 0, 0, 1]

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="same shape"):
            pack_codes(np.array([1], np.uint64), np.array([1, 2]))

    def test_bad_lengths_rejected(self):
        with pytest.raises(ValueError, match="1..64"):
            pack_codes(np.array([1], np.uint64), np.array([0]))
        with pytest.raises(ValueError, match="1..64"):
            pack_codes(np.array([1], np.uint64), np.array([65]))


class TestPackedBits:
    def test_validates_byte_count(self):
        with pytest.raises(ValueError):
            PackedBits(data=b"\x00\x00", n_bits=3)
        with pytest.raises(ValueError):
            PackedBits(data=b"", n_bits=1)
        with pytest.raises(ValueError):
            PackedBits(data=b"\x00", n_bits=-1)

    def test_unpack_roundtrip(self):
        packed = pack_codes(
            np.array([5, 2, 7], np.uint64), np.array([3, 2, 3])
        )
        bits = unpack_bits(packed)
        assert list(bits) == [1, 0, 1, 1, 0, 1, 1, 1]

    def test_unpack_empty(self):
        assert unpack_bits(PackedBits(data=b"", n_bits=0)).size == 0


@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(1, 300),
    max_len=st.integers(1, 24),
)
@settings(max_examples=50, deadline=None)
def test_pack_unpack_property(seed, n, max_len):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, max_len + 1, size=n)
    codes = np.array(
        [rng.integers(0, 1 << int(l)) for l in lengths], dtype=np.uint64
    )
    packed = pack_codes(codes, lengths)
    assert packed.n_bits == int(lengths.sum())
    bits = unpack_bits(packed)
    # Re-read each code from the bit string.
    pos = 0
    for code, length in zip(codes, lengths):
        val = 0
        for b in bits[pos : pos + length]:
            val = (val << 1) | int(b)
        assert val == int(code)
        pos += int(length)
