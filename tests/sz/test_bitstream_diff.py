"""Differential tests: word-packed kernel vs the reference packer.

``pack_codes_ref`` is the original byte-per-bit scatter kept as an
oracle; ``pack_codes`` is the word-packed kernel that replaced it on
the hot path.  Both must emit byte-identical :class:`PackedBits` for
every valid code/length table — the Huffman section is exactly what
Encr-Quant/Encr-Huffman encrypt, so any packer divergence would
silently move the security boundary and break the frozen wire format.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz.bitstream import PackedBits, pack_codes, pack_codes_ref


def _assert_identical(codes: np.ndarray, lengths: np.ndarray) -> None:
    got = pack_codes(codes, lengths)
    want = pack_codes_ref(codes, lengths)
    assert isinstance(got, PackedBits)
    assert got.n_bits == want.n_bits
    assert got.data == want.data


def _random_table(rng, n: int, min_len: int, max_len: int):
    lengths = rng.integers(min_len, max_len + 1, size=n).astype(np.int64)
    # Draw below 2**63 and widen: rng.integers is bounded by int64.
    raw = rng.integers(0, 1 << 62, size=n).astype(np.uint64)
    raw |= raw << np.uint64(2)
    mask = ~np.uint64(0) >> (np.uint64(64) - lengths.astype(np.uint64))
    return raw & mask, lengths


class TestEdgeCases:
    def test_empty_input(self):
        _assert_identical(np.empty(0, np.uint64), np.empty(0, np.int64))

    def test_single_symbol(self):
        _assert_identical(np.array([0b1011], np.uint64), np.array([4]))

    def test_single_one_bit_symbol(self):
        _assert_identical(np.array([1], np.uint64), np.array([1]))

    def test_all_one_bit_codewords(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 2, size=1000).astype(np.uint64)
        _assert_identical(codes, np.ones(1000, dtype=np.int64))

    def test_all_32_bit_codewords(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 1 << 32, size=500).astype(np.uint64)
        _assert_identical(codes, np.full(500, 32, dtype=np.int64))

    def test_all_64_bit_codewords(self):
        rng = np.random.default_rng(2)
        codes, lengths = _random_table(rng, 300, 64, 64)
        _assert_identical(codes, lengths)

    def test_word_boundary_straddles(self):
        # 63-bit + 2-bit codewords force every second symbol to spill
        # across a uint64 word boundary.
        codes = np.array([(1 << 63) - 1, 0b10] * 40, np.uint64)
        lengths = np.array([63, 2] * 40, np.int64)
        _assert_identical(codes, lengths)

    def test_exactly_one_word(self):
        _assert_identical(
            np.array([0xDEADBEEF, 0xCAFEBABE], np.uint64),
            np.array([32, 32], np.int64),
        )

    def test_stray_high_bits_ignored(self):
        # The contract reads only the low `lengths[i]` bits; garbage
        # above them must not leak into neighboring slots.
        codes = np.array([0xFFFF_FFFF_FFFF_FFFF, 0xABCD_EF01_2345_6789],
                         np.uint64)
        lengths = np.array([5, 13], np.int64)
        _assert_identical(codes, lengths)

    def test_chunk_boundary(self):
        # Straddle the kernel's internal _PACK_CHUNK boundary so the
        # running-base offset path is exercised.
        from repro.sz.bitstream import _PACK_CHUNK

        rng = np.random.default_rng(3)
        codes, lengths = _random_table(rng, _PACK_CHUNK + 7, 1, 24)
        _assert_identical(codes, lengths)


@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(1, 2000),
    min_len=st.integers(1, 32),
    span=st.integers(0, 32),
)
@settings(max_examples=100, deadline=None)
def test_differential_random_tables(seed, n, min_len, span):
    rng = np.random.default_rng(seed)
    codes, lengths = _random_table(rng, n, min_len, min(64, min_len + span))
    _assert_identical(codes, lengths)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_differential_huffman_like(seed):
    # Skewed length distribution shaped like a real canonical code:
    # mostly short codewords with a long tail, as the compressor emits.
    rng = np.random.default_rng(seed)
    lengths = np.clip(
        rng.geometric(0.3, size=1500) + 1, 1, 24
    ).astype(np.int64)
    mask = ~np.uint64(0) >> (np.uint64(64) - lengths.astype(np.uint64))
    codes = rng.integers(0, 1 << 62, size=1500).astype(np.uint64) & mask
    _assert_identical(codes, lengths)


class TestZeroLengthGuard:
    """Regression: a 0-length codeword on a present symbol is rejected
    with a clear error by both packers instead of corrupting the
    stream."""

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError, match="zero-length codeword"):
            pack_codes(np.array([1, 2], np.uint64), np.array([3, 0]))

    def test_zero_length_rejected_ref(self):
        with pytest.raises(ValueError, match="zero-length codeword"):
            pack_codes_ref(np.array([1, 2], np.uint64), np.array([3, 0]))

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError, match="zero-length codeword"):
            pack_codes(np.array([1], np.uint64), np.array([-1]))
