"""Grid quantization and the error-bound machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz import quantizer
from repro.sz.quantizer import ErrorBound


class TestErrorBound:
    def test_abs_mode(self):
        eb = ErrorBound(1e-3, "abs")
        assert eb.resolve(np.array([1.0, 100.0])) == 1e-3

    def test_rel_mode(self):
        eb = ErrorBound(1e-2, "rel")
        data = np.array([0.0, 10.0])
        assert eb.resolve(data) == pytest.approx(0.1)

    def test_rel_constant_field(self):
        eb = ErrorBound(1e-2, "rel")
        assert eb.resolve(np.full(10, 5.0)) == 1e-2

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ErrorBound(1e-3, "l2")

    def test_pw_rel_resolves_to_log_space(self):
        import math
        eb = ErrorBound(1e-2, "pw_rel")
        resolved = eb.resolve(np.zeros(4, dtype=np.float64))
        assert resolved == pytest.approx(math.log2(1.01), rel=1e-6)

    def test_pw_rel_rejects_sub_resolution_bound(self):
        eb = ErrorBound(1e-9, "pw_rel")
        with pytest.raises(ValueError, match="resolution"):
            eb.resolve(np.zeros(4, dtype=np.float32))

    def test_rejects_bad_value(self):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                ErrorBound(bad)


class TestGridQuantize:
    def test_grid_bound(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal(1000)
        for eb in (1e-1, 1e-3, 1e-6):
            q = quantizer.grid_quantize(data, eb)
            recon = q * 2.0 * eb
            assert np.abs(recon - data).max() <= eb * (1 + 1e-12)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="non-finite"):
            quantizer.grid_quantize(np.array([1.0, np.inf]), 1e-3)
        with pytest.raises(ValueError, match="non-finite"):
            quantizer.grid_quantize(np.array([np.nan]), 1e-3)

    def test_rejects_overflowing_grid(self):
        with pytest.raises(ValueError, match="too tight"):
            quantizer.grid_quantize(np.array([1e30]), 1e-10)

    def test_zero_maps_to_zero(self):
        assert quantizer.grid_quantize(np.zeros(4), 1e-3).tolist() == [0, 0, 0, 0]


class TestVerifiedQuantize:
    def test_float32_bound_holds_after_cast(self):
        rng = np.random.default_rng(1)
        data = (rng.standard_normal(2000) * 4).astype(np.float32)
        for eb in (1e-3, 1e-5, 1e-7):
            q, exact_idx = quantizer.grid_quantize_verified(data, eb)
            recon = quantizer.grid_reconstruct(q, eb, np.float32)
            err = np.abs(recon.astype(np.float64) - data.astype(np.float64))
            ok = np.ones(data.size, dtype=bool)
            ok[exact_idx] = False  # those are stored verbatim upstream
            assert (err[ok] <= eb).all()

    def test_no_exact_points_at_loose_bound(self):
        data = np.linspace(0, 1, 100, dtype=np.float32)
        _, exact_idx = quantizer.grid_quantize_verified(data, 1e-2)
        assert exact_idx.size == 0

    def test_phantom_collapse_reduces_entropy(self):
        # Values far above the bound's resolution: the staircase should
        # produce far fewer distinct residuals than naive rint.
        rng = np.random.default_rng(2)
        data = (2.0e4 + 0.05 * rng.standard_normal(4096)).astype(np.float32)
        eb = 1e-7
        naive = quantizer.grid_quantize(data, eb)
        collapsed, _ = quantizer.grid_quantize_verified(data, eb)
        assert np.unique(np.diff(collapsed)).size < np.unique(np.diff(naive)).size
        # And the collapsed grid still casts back to the exact floats.
        recon = quantizer.grid_reconstruct(collapsed, eb, np.float32)
        assert np.array_equal(recon, data)

    def test_float64_unaffected_by_collapse(self):
        data = np.linspace(0, 1, 50)
        q, exact_idx = quantizer.grid_quantize_verified(data, 1e-6)
        assert exact_idx.size == 0
        assert np.array_equal(q, quantizer.grid_quantize(data, 1e-6))


class TestChooseRadius:
    def test_small_residuals_small_radius(self):
        res = np.zeros(1000, dtype=np.int64)
        assert quantizer.choose_radius(res) == quantizer.MIN_RADIUS

    def test_scales_with_magnitude(self):
        res = np.full(1000, 100, dtype=np.int64)
        assert quantizer.choose_radius(res) == 128

    def test_caps_at_max(self):
        res = np.full(1000, 2**40, dtype=np.int64)
        assert quantizer.choose_radius(res) == quantizer.MAX_RADIUS

    def test_coverage_respected(self):
        res = np.concatenate([np.zeros(99, dtype=np.int64),
                              np.full(1, 1000, dtype=np.int64)])
        r99 = quantizer.choose_radius(res, coverage=0.99)
        r100 = quantizer.choose_radius(res, coverage=1.0)
        assert r99 == quantizer.MIN_RADIUS
        assert r100 == 1024

    def test_empty_input(self):
        assert quantizer.choose_radius(np.empty(0, np.int64)) == quantizer.MIN_RADIUS

    def test_rejects_bad_coverage(self):
        with pytest.raises(ValueError, match="coverage"):
            quantizer.choose_radius(np.zeros(4, np.int64), coverage=0.0)


class TestCodes:
    def test_sentinel_layout(self):
        res = np.array([0, 5, -5, 31, -31, 32, -32, 1000], dtype=np.int64)
        codes, unpred = quantizer.codes_from_residuals(res, 32)
        assert list(unpred) == [False] * 5 + [True] * 3
        assert (codes[unpred] == 0).all()
        assert (codes[~unpred] == res[~unpred] + 32).all()
        assert codes[~unpred].min() >= 1

    def test_roundtrip(self):
        res = np.array([0, 5, -5, 100, -100], dtype=np.int64)
        codes, unpred = quantizer.codes_from_residuals(res, 32)
        back = quantizer.residuals_from_codes(codes, 32, res[unpred])
        assert np.array_equal(back, res)

    def test_mismatched_channel_rejected(self):
        codes = np.array([0, 33], dtype=np.int64)
        with pytest.raises(ValueError, match="unpredictable"):
            quantizer.residuals_from_codes(codes, 32, np.empty(0, np.int64))

    @given(seed=st.integers(0, 2**32 - 1),
           radius=st.sampled_from([16, 64, 1024, 32768]))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, seed, radius):
        rng = np.random.default_rng(seed)
        res = (rng.standard_normal(500) * radius).astype(np.int64)
        codes, unpred = quantizer.codes_from_residuals(res, radius)
        back = quantizer.residuals_from_codes(codes, radius, res[unpred])
        assert np.array_equal(back, res)
