"""Block decomposition helpers."""

import numpy as np
import pytest

from repro.sz import blocks


class TestPaddedShape:
    def test_exact_multiple_unchanged(self):
        assert blocks.padded_shape((16, 8), 8) == (16, 8)

    def test_rounds_up(self):
        assert blocks.padded_shape((10, 11, 3), 8) == (16, 16, 8)

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError, match="positive"):
            blocks.padded_shape((4,), 0)


class TestBlockView:
    def test_roundtrip_2d(self):
        data = np.arange(16 * 24).reshape(16, 24)
        blocked = blocks.block_view(data, 8)
        assert blocked.shape == (6, 64)
        back = blocks.unblock_view(blocked, (16, 24), 8)
        assert np.array_equal(back, data)

    def test_roundtrip_3d(self):
        data = np.arange(8 * 16 * 8).reshape(8, 16, 8)
        blocked = blocks.block_view(data, 8)
        assert blocked.shape == (2, 512)
        assert np.array_equal(blocks.unblock_view(blocked, data.shape, 8), data)

    def test_block_contents_are_local(self):
        data = np.arange(64).reshape(8, 8)
        blocked = blocks.block_view(data, 4)
        # First block must be the top-left 4x4 corner, C order.
        assert np.array_equal(blocked[0], data[:4, :4].reshape(-1))

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError, match="multiple"):
            blocks.block_view(np.zeros((10, 8)), 8)

    def test_unblock_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="tile"):
            blocks.unblock_view(np.zeros((3, 64)), (16, 16), 8)


class TestPadCrop:
    def test_pad_replicates_edges(self):
        data = np.array([[1.0, 2.0], [3.0, 4.0]])
        padded = blocks.pad_to_blocks(data, 4)
        assert padded.shape == (4, 4)
        assert padded[3, 3] == 4.0
        assert padded[0, 3] == 2.0

    def test_pad_noop_when_aligned(self):
        data = np.zeros((8, 8))
        assert blocks.pad_to_blocks(data, 8) is data

    def test_crop_inverts_pad(self):
        data = np.random.default_rng(0).random((5, 9))
        padded = blocks.pad_to_blocks(data, 4)
        assert np.array_equal(blocks.crop(padded, data.shape), data)

    def test_n_blocks(self):
        assert blocks.n_blocks((10, 11), 8) == 4
        assert blocks.n_blocks((8, 8, 8), 8) == 1
