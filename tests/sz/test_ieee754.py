"""IEEE-754 binary-analysis codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz.ieee754 import float_truncate, ieee754_decode, ieee754_encode

floats32 = st.floats(allow_nan=False, allow_infinity=False, width=32)


class TestFloatTruncate:
    def test_lossless_when_eb_zero(self):
        vals = np.array([1.5, -2.25, 1e-30], dtype=np.float32)
        assert np.array_equal(float_truncate(vals, 0.0), vals)

    def test_error_bounded(self):
        rng = np.random.default_rng(3)
        vals = (rng.standard_normal(1000) * 100).astype(np.float32)
        for eb in (1e-1, 1e-3, 1e-5):
            out = float_truncate(vals, eb)
            assert np.abs(out.astype(np.float64) - vals.astype(np.float64)).max() < eb

    def test_small_values_collapse_to_zero(self):
        vals = np.array([1e-8, -1e-8], dtype=np.float32)
        out = float_truncate(vals, 1e-3)
        assert (out == 0).all()
        assert np.signbit(out[1])  # sign preserved

    def test_zeros_reduce_trailing_bits(self):
        vals = np.array([123.456], dtype=np.float32)
        out = float_truncate(vals, 1e-1)
        bits = out.view(np.uint32)[0]
        # The low mantissa bits must be cleared.
        assert bits & 0x3FF == 0

    def test_specials_preserved(self):
        vals = np.array([np.inf, -np.inf, np.nan], dtype=np.float32)
        out = float_truncate(vals, 1e-3)
        assert np.isinf(out[0]) and out[0] > 0
        assert np.isinf(out[1]) and out[1] < 0
        assert np.isnan(out[2])

    @given(values=st.lists(floats32, min_size=1, max_size=50),
           eb=st.sampled_from([1e-1, 1e-2, 1e-4, 1e-6]))
    @settings(max_examples=50, deadline=None)
    def test_truncation_bound_property(self, values, eb):
        vals = np.array(values, dtype=np.float32)
        out = float_truncate(vals, eb)
        err = np.abs(out.astype(np.float64) - vals.astype(np.float64))
        assert (err < eb).all()


class TestCodec:
    def test_roundtrip_float32_lossless(self):
        vals = np.array([0.0, -1.5, 3.14159, 1e20, -1e-20], dtype=np.float32)
        out = ieee754_decode(ieee754_encode(vals))
        assert out.dtype == np.float32
        assert np.array_equal(out, vals)

    def test_roundtrip_float64_lossless(self):
        vals = np.array([0.0, -1.5, np.pi, 1e300], dtype=np.float64)
        out = ieee754_decode(ieee754_encode(vals))
        assert out.dtype == np.float64
        assert np.array_equal(out, vals)

    def test_empty(self):
        out = ieee754_decode(ieee754_encode(np.empty(0, np.float32)))
        assert out.size == 0

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(TypeError, match="dtype"):
            ieee754_encode(np.arange(4, dtype=np.int32))

    def test_rejects_truncated_stream(self):
        data = ieee754_encode(np.ones(4, dtype=np.float32))
        with pytest.raises(ValueError):
            ieee754_decode(data[:-1])
        with pytest.raises(ValueError):
            ieee754_decode(data[:3])

    def test_rejects_bad_itemsize(self):
        import struct
        with pytest.raises(ValueError, match="itemsize"):
            ieee754_decode(struct.pack("<QB", 0, 3))

    def test_byte_planes_compress_better(self):
        import zlib
        # A smooth field's planes beat its interleaved raw bytes.
        vals = (np.linspace(1.0, 2.0, 4096) + 0.001).astype(np.float32)
        planes = ieee754_encode(vals)
        assert len(zlib.compress(planes)) < len(zlib.compress(vals.tobytes()))

    @given(st.lists(floats32, min_size=0, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        vals = np.array(values, dtype=np.float32)
        assert np.array_equal(ieee754_decode(ieee754_encode(vals)), vals)
