"""Integer side-channel codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz import intcodec

int64s = st.integers(min_value=-(2**62), max_value=2**62 - 1)


class TestZigzag:
    def test_small_values(self):
        vals = np.array([0, -1, 1, -2, 2], dtype=np.int64)
        assert list(intcodec.zigzag_encode(vals)) == [0, 1, 2, 3, 4]

    def test_roundtrip_extremes(self):
        vals = np.array([0, 1, -1, 2**62, -(2**62), 2**63 - 1, -(2**63)],
                        dtype=np.int64)
        assert np.array_equal(
            intcodec.zigzag_decode(intcodec.zigzag_encode(vals)), vals
        )

    @given(st.lists(int64s, min_size=0, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(
            intcodec.zigzag_decode(intcodec.zigzag_encode(arr)), arr
        )


class TestVarint:
    def test_small_values_one_byte(self):
        data = intcodec.varint_encode(np.array([0, -1, 1], dtype=np.int64))
        assert len(data) == 3

    def test_roundtrip(self):
        vals = np.array([0, 1, -1, 127, -128, 300, -99999, 2**40],
                        dtype=np.int64)
        data = intcodec.varint_encode(vals)
        assert np.array_equal(intcodec.varint_decode(data, len(vals)), vals)

    def test_truncated_stream_rejected(self):
        data = intcodec.varint_encode(np.array([99999], dtype=np.int64))
        with pytest.raises(ValueError, match="truncated"):
            intcodec.varint_decode(data[:-1], 1)

    def test_overlong_varint_rejected(self):
        with pytest.raises(ValueError, match="overflow"):
            intcodec.varint_decode(b"\xff" * 11, 1)

    @given(st.lists(int64s, min_size=0, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        data = intcodec.varint_encode(arr)
        assert np.array_equal(intcodec.varint_decode(data, len(arr)), arr)


class TestBytePlane:
    def test_empty(self):
        data = intcodec.byteplane_encode(np.empty(0, np.int64))
        assert intcodec.byteplane_decode(data).size == 0

    def test_plane_count_minimal(self):
        # Small magnitudes need one plane: 9-byte header + n bytes.
        vals = np.arange(-60, 60, dtype=np.int64)
        data = intcodec.byteplane_encode(vals)
        assert len(data) == 9 + vals.size

    def test_large_values_more_planes(self):
        vals = np.array([2**40], dtype=np.int64)
        data = intcodec.byteplane_encode(vals)
        assert len(data) == 9 + 6  # zigzag(2^40) needs 6 bytes

    def test_roundtrip_mixed(self):
        vals = np.array([0, -5, 1000, -(2**33), 2**50, 7], dtype=np.int64)
        assert np.array_equal(
            intcodec.byteplane_decode(intcodec.byteplane_encode(vals)), vals
        )

    def test_rejects_truncation(self):
        data = intcodec.byteplane_encode(np.arange(10, dtype=np.int64))
        with pytest.raises(ValueError):
            intcodec.byteplane_decode(data[:-1])
        with pytest.raises(ValueError):
            intcodec.byteplane_decode(data[:4])

    def test_rejects_bad_plane_count(self):
        import struct
        blob = struct.pack("<BQ", 9, 1) + bytes(9)
        with pytest.raises(ValueError, match="plane count"):
            intcodec.byteplane_decode(blob)

    def test_zlib_friendliness(self):
        # Byte planes of small-magnitude data must compress far better
        # than the raw int64 bytes: that is the codec's entire purpose.
        import zlib
        rng = np.random.default_rng(5)
        vals = rng.integers(-100, 100, size=4096).astype(np.int64)
        planes = intcodec.byteplane_encode(vals)
        assert len(zlib.compress(planes)) < len(zlib.compress(vals.tobytes()))

    @given(st.lists(int64s, min_size=0, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        out = intcodec.byteplane_decode(intcodec.byteplane_encode(arr))
        assert np.array_equal(out, arr)
