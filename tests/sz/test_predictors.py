"""SZ predictors on the integer grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz import predictors


class TestLorenzo:
    def test_1d_is_first_difference(self):
        q = np.array([3, 5, 4, 4], dtype=np.int64)
        res = predictors.lorenzo_residuals(q)
        assert list(res) == [3, 2, -1, 0]

    def test_2d_matches_stencil(self):
        rng = np.random.default_rng(0)
        q = rng.integers(-100, 100, size=(12, 9)).astype(np.int64)
        res = predictors.lorenzo_residuals(q)
        qp = np.pad(q, ((1, 0), (1, 0)))
        expected = q - (qp[:-1, 1:] + qp[1:, :-1] - qp[:-1, :-1])
        assert np.array_equal(res, expected)

    def test_3d_matches_stencil(self):
        rng = np.random.default_rng(1)
        q = rng.integers(-50, 50, size=(6, 7, 8)).astype(np.int64)
        res = predictors.lorenzo_residuals(q)
        qp = np.pad(q, ((1, 0),) * 3)
        pred = (
            qp[:-1, 1:, 1:] + qp[1:, :-1, 1:] + qp[1:, 1:, :-1]
            - qp[:-1, :-1, 1:] - qp[:-1, 1:, :-1] - qp[1:, :-1, :-1]
            + qp[:-1, :-1, :-1]
        )
        assert np.array_equal(res, q - pred)

    def test_reconstruct_inverts(self):
        rng = np.random.default_rng(2)
        for shape in [(100,), (13, 17), (5, 6, 7), (3, 4, 5, 6)]:
            q = rng.integers(-1000, 1000, size=shape).astype(np.int64)
            res = predictors.lorenzo_residuals(q)
            assert np.array_equal(predictors.lorenzo_reconstruct(res), q)

    def test_smooth_data_small_residuals(self):
        x = np.arange(100, dtype=np.int64) * 3
        res = predictors.lorenzo_residuals(x)
        assert np.abs(res[1:]).max() <= 3

    @given(seed=st.integers(0, 2**32 - 1),
           ndim=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_inverse_property(self, seed, ndim):
        rng = np.random.default_rng(seed)
        shape = tuple(rng.integers(1, 12, size=ndim))
        q = rng.integers(-(2**30), 2**30, size=shape).astype(np.int64)
        assert np.array_equal(
            predictors.lorenzo_reconstruct(predictors.lorenzo_residuals(q)), q
        )


class TestMean:
    def test_modal_value(self):
        q = np.array([5, 5, 5, 1, 2], dtype=np.int64)
        assert predictors.modal_value(q) == 5

    def test_modal_empty(self):
        assert predictors.modal_value(np.empty(0, np.int64)) == 0

    def test_residual_roundtrip(self):
        q = np.array([10, 12, 10, 9], dtype=np.int64)
        res = predictors.mean_residuals(q, 10)
        assert np.array_equal(predictors.mean_reconstruct(res, 10), q)

    def test_clustered_data_zero_residuals(self):
        q = np.full((8, 8), 42, dtype=np.int64)
        res = predictors.mean_residuals(q, predictors.modal_value(q))
        assert (res == 0).all()


class TestRegression:
    def test_exact_on_plane(self):
        # A true plane is predicted exactly (coefficients fit losslessly
        # within float32 precision on small blocks).
        i, j = np.meshgrid(np.arange(16), np.arange(16), indexing="ij")
        q = (3 * i + 5 * j + 7).astype(np.int64)
        model = predictors.regression_fit(q, 8)
        pred = predictors.regression_predict(model)
        assert np.array_equal(pred, q)

    def test_coefficient_shape(self):
        q = np.zeros((16, 16, 16), dtype=np.int64)
        model = predictors.regression_fit(q, 8)
        assert model.coefficients.shape == (8, 4)
        assert model.coefficients.dtype == np.float32

    def test_padding_for_partial_blocks(self):
        q = np.arange(10 * 11, dtype=np.int64).reshape(10, 11)
        model = predictors.regression_fit(q, 8)
        pred = predictors.regression_predict(model)
        assert pred.shape == q.shape

    def test_model_validates_shape(self):
        with pytest.raises(ValueError, match="coefficients"):
            predictors.RegressionModel(
                shape=(16, 16), block_size=8,
                coefficients=np.zeros((1, 3), dtype=np.float32),
            )

    def test_deterministic_across_calls(self):
        rng = np.random.default_rng(3)
        q = rng.integers(0, 100, size=(24, 24)).astype(np.int64)
        m1 = predictors.regression_fit(q, 8)
        p1 = predictors.regression_predict(m1)
        # Decoder path: rebuild the model from the float32 coefficients.
        m2 = predictors.RegressionModel(
            shape=q.shape, block_size=8,
            coefficients=m1.coefficients.copy(),
        )
        assert np.array_equal(p1, predictors.regression_predict(m2))


class TestSelection:
    def test_smooth_gradient_prefers_structure(self):
        i, j = np.meshgrid(np.arange(32), np.arange(32), indexing="ij")
        q = (2 * i + 3 * j).astype(np.int64)
        choice = predictors.select_predictor(q, 256, 8)
        assert choice in ("lorenzo", "regression")

    def test_constant_data_any_predictor_ok(self):
        q = np.full((16, 16), 7, dtype=np.int64)
        assert predictors.select_predictor(q, 256, 8) in predictors.PREDICTORS

    def test_clustered_prefers_mean(self):
        rng = np.random.default_rng(4)
        # Values identical except at scattered, spatially-random spikes:
        # Lorenzo pays twice per spike, mean pays once.
        q = np.full(4096, 100, dtype=np.int64)
        idx = rng.choice(4096, size=400, replace=False)
        q[idx] += rng.integers(-5, 5, size=400)
        choice = predictors.select_predictor(q, 64, 8)
        assert choice == "mean"

    def test_unknown_candidate_rejected(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            predictors.select_predictor(
                np.zeros(8, np.int64), 16, 8, candidates=("wavelet",)
            )


class TestEntropyEstimate:
    def test_zero_for_empty(self):
        assert predictors.estimate_code_entropy(np.empty(0, np.int64), 16) == 0.0

    def test_constant_residuals_zero_entropy(self):
        res = np.zeros(1000, dtype=np.int64)
        assert predictors.estimate_code_entropy(res, 16) == pytest.approx(0.0)

    def test_unpredictable_penalty(self):
        res = np.full(100, 10**6, dtype=np.int64)  # all out of range
        cost = predictors.estimate_code_entropy(
            res, 16, unpredictable_penalty_bits=40.0
        )
        assert cost == pytest.approx(40.0)

    def test_uniform_residuals_high_entropy(self):
        rng = np.random.default_rng(5)
        res = rng.integers(-8, 8, size=10000).astype(np.int64)
        cost = predictors.estimate_code_entropy(res, 16)
        assert 3.5 < cost < 4.1  # ~log2(16)
