"""The SecureCompressor façade."""

import numpy as np
import pytest

from repro.core.pipeline import SecureCompressor


def _max_err(a, b):
    return float(np.max(np.abs(a.astype(np.float64) - b.astype(np.float64))))


class TestRoundTrips:
    @pytest.mark.parametrize("scheme", ["none", "cmpr_encr", "encr_quant",
                                        "encr_huffman"])
    def test_all_schemes(self, scheme, smooth_field, key):
        sc = SecureCompressor(scheme=scheme, error_bound=1e-4, key=key)
        result = sc.compress(smooth_field)
        out = sc.decompress(result.container)
        assert _max_err(out, smooth_field) <= 1e-4
        assert result.scheme == scheme
        assert result.compressed_bytes == len(result.container)

    @pytest.mark.parametrize("mode", ["cbc", "ctr"])
    def test_cipher_modes(self, mode, smooth_field, key):
        sc = SecureCompressor("encr_huffman", 1e-3, key=key, cipher_mode=mode)
        out = sc.decompress(sc.compress(smooth_field).container)
        assert _max_err(out, smooth_field) <= 1e-3

    def test_deterministic_with_seeded_rng(self, smooth_field, key):
        a = SecureCompressor("encr_huffman", 1e-3, key=key,
                             random_state=np.random.default_rng(5))
        b = SecureCompressor("encr_huffman", 1e-3, key=key,
                             random_state=np.random.default_rng(5))
        assert a.compress(smooth_field).container == b.compress(
            smooth_field
        ).container

    def test_fresh_ivs_differ(self, smooth_field, key):
        sc = SecureCompressor("encr_huffman", 1e-3, key=key)
        a = sc.compress(smooth_field).container
        b = sc.compress(smooth_field).container
        assert a != b  # the IV (and thus tree ciphertext) must differ

    def test_decompress_with_times(self, smooth_field, key):
        sc = SecureCompressor("cmpr_encr", 1e-3, key=key)
        result = sc.compress(smooth_field)
        out, times = sc.decompress_with_times(result.container)
        assert _max_err(out, smooth_field) <= 1e-3
        assert "decrypt" in times.seconds
        assert "huffman_decode" in times.seconds

    @pytest.mark.parametrize("scheme", ["cmpr_encr", "encr_quant",
                                        "encr_huffman", "encr_huffman_raw"])
    def test_ctr_all_schemes(self, scheme, smooth_field, key):
        sc = SecureCompressor(scheme, 1e-4, key=key, cipher_mode="ctr")
        out = sc.decompress(sc.compress(smooth_field).container)
        assert _max_err(out, smooth_field) <= 1e-4

    def test_ctr_prefetch_bytes_identical(self, smooth_field, key):
        # The pipelined keystream is a pure overlap optimization: with
        # the same nonce the container must match the serial path bit
        # for bit.
        kwargs = dict(key=key, cipher_mode="ctr", allow_nonce_reuse=True)
        a = SecureCompressor(
            "cmpr_encr", 1e-3, random_state=np.random.default_rng(7), **kwargs
        ).compress(smooth_field).container
        b = SecureCompressor(
            "cmpr_encr", 1e-3, random_state=np.random.default_rng(7),
            keystream_prefetch=False, **kwargs
        ).compress(smooth_field).container
        assert a == b

    def test_empty_field_rejected_in_both_modes(self, key):
        # The SZ substrate refuses empty arrays by contract; both cipher
        # modes must surface that refusal before touching the cipher
        # (zero-length *ciphertext* round trips live in tests/crypto/).
        empty = np.empty((0,), dtype=np.float32)
        for mode in ("cbc", "ctr"):
            sc = SecureCompressor("cmpr_encr", 1e-3, key=key, cipher_mode=mode)
            with pytest.raises(ValueError, match="empty"):
                sc.compress(empty)


class TestCtrNonceReuseGuard:
    def test_seeded_ctr_refused_by_default(self, key):
        with pytest.raises(ValueError, match="nonce"):
            SecureCompressor("encr_huffman", 1e-3, key=key, cipher_mode="ctr",
                             random_state=np.random.default_rng(1))

    def test_explicit_optin_allows_seeded_ctr(self, smooth_field, key):
        a = SecureCompressor("encr_huffman", 1e-3, key=key, cipher_mode="ctr",
                             random_state=np.random.default_rng(5),
                             allow_nonce_reuse=True)
        b = SecureCompressor("encr_huffman", 1e-3, key=key, cipher_mode="ctr",
                             random_state=np.random.default_rng(5),
                             allow_nonce_reuse=True)
        assert a.compress(smooth_field).container == b.compress(
            smooth_field
        ).container

    def test_seeded_cbc_unaffected(self, smooth_field, key):
        sc = SecureCompressor("encr_huffman", 1e-3, key=key,
                              random_state=np.random.default_rng(5))
        out = sc.decompress(sc.compress(smooth_field).container)
        assert _max_err(out, smooth_field) <= 1e-3

    def test_os_entropy_ctr_needs_no_flag(self, smooth_field, key):
        sc = SecureCompressor("encr_huffman", 1e-3, key=key, cipher_mode="ctr")
        out = sc.decompress(sc.compress(smooth_field).container)
        assert _max_err(out, smooth_field) <= 1e-3


class TestResultStats:
    def test_encrypted_bytes_ordering(self, smooth_field, key):
        sizes = {}
        for scheme in ("none", "encr_huffman", "encr_quant", "cmpr_encr"):
            sc = SecureCompressor(scheme, 1e-4, key=key)
            sizes[scheme] = sc.compress(smooth_field).encrypted_bytes
        assert sizes["none"] == 0
        assert 0 < sizes["encr_huffman"] < sizes["encr_quant"] <= sizes["cmpr_encr"]

    def test_sz_stats_passthrough(self, smooth_field, key):
        result = SecureCompressor("encr_huffman", 1e-4, key=key).compress(
            smooth_field
        )
        assert result.sz_stats.n_elements == smooth_field.size

    def test_times_include_scheme_stages(self, smooth_field, key):
        result = SecureCompressor("encr_quant", 1e-4, key=key).compress(
            smooth_field
        )
        assert "encrypt" in result.times.seconds
        assert "lossless" in result.times.seconds
        assert "predict" in result.times.seconds


class TestValidation:
    def test_key_required(self):
        with pytest.raises(ValueError, match="requires"):
            SecureCompressor(scheme="encr_huffman", key=None)

    def test_none_scheme_needs_no_key(self, smooth_field):
        sc = SecureCompressor(scheme="none")
        out = sc.decompress(sc.compress(smooth_field).container)
        assert _max_err(out, smooth_field) <= 1e-3

    def test_unknown_scheme(self, key):
        with pytest.raises(ValueError, match="unknown scheme"):
            SecureCompressor(scheme="double_rot13", key=key)

    def test_unknown_mode(self, key):
        with pytest.raises(ValueError, match="mode"):
            SecureCompressor("encr_huffman", key=key, cipher_mode="xts")

    def test_scheme_mismatch_on_decompress(self, smooth_field, key):
        writer = SecureCompressor("encr_huffman", 1e-3, key=key)
        reader = SecureCompressor("cmpr_encr", 1e-3, key=key)
        blob = writer.compress(smooth_field).container
        with pytest.raises(ValueError, match="scheme"):
            reader.decompress(blob)

    def test_wrong_key_decompress_fails(self, smooth_field, key):
        writer = SecureCompressor("cmpr_encr", 1e-3, key=key)
        blob = writer.compress(smooth_field).container
        reader = SecureCompressor("cmpr_encr", 1e-3, key=bytes(16))
        with pytest.raises(ValueError):
            reader.decompress(blob)

    def test_corrupt_container_raises_value_error(self, smooth_field, key):
        sc = SecureCompressor("encr_huffman", 1e-3, key=key)
        blob = bytearray(sc.compress(smooth_field).container)
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(ValueError):
            sc.decompress(bytes(blob))
