"""SECZ container framing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import container as cont


class TestSections:
    def test_roundtrip(self):
        sections = {"meta": b"abc", "tree": b"", "codes": b"\x00" * 100}
        blob = cont.pack_sections(sections)
        assert cont.unpack_sections(blob) == sections

    def test_empty_set(self):
        assert cont.unpack_sections(cont.pack_sections({})) == {}

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown section name"):
            cont.pack_sections({"bogus": b""})

    def test_trailing_bytes_rejected(self):
        blob = cont.pack_sections({"meta": b"x"}) + b"junk"
        with pytest.raises(ValueError, match="trailing"):
            cont.unpack_sections(blob)

    def test_truncated_table_rejected(self):
        blob = cont.pack_sections({"meta": b"x", "tree": b"y"})
        with pytest.raises(ValueError):
            cont.unpack_sections(blob[:5])

    def test_truncated_payload_rejected(self):
        blob = cont.pack_sections({"meta": b"0123456789"})
        with pytest.raises(ValueError, match="truncated"):
            cont.unpack_sections(blob[:-2])

    def test_unknown_id_rejected(self):
        blob = bytearray(cont.pack_sections({"meta": b"x"}))
        blob[1] = 250  # stomp the section id
        with pytest.raises(ValueError, match="unknown section id"):
            cont.unpack_sections(bytes(blob))

    def test_empty_blob_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            cont.unpack_sections(b"")


class TestContainer:
    def test_roundtrip(self):
        sections = {"zblob": b"payload", "cipher": b"\x01" * 32}
        blob = cont.pack_container(3, "cbc", bytes(16), sections)
        parsed = cont.parse_container(blob)
        assert parsed.scheme_id == 3
        assert parsed.cipher_mode == "cbc"
        assert parsed.iv == bytes(16)
        assert parsed.sections == sections

    def test_short_iv_roundtrip(self):
        blob = cont.pack_container(1, "ctr", b"12345678", {"cipher": b"x"})
        parsed = cont.parse_container(blob)
        assert parsed.iv == b"12345678"
        assert parsed.cipher_mode == "ctr"

    def test_bad_magic_rejected(self):
        blob = cont.pack_container(0, "cbc", bytes(16), {"zblob": b""})
        with pytest.raises(ValueError, match="magic"):
            cont.parse_container(b"XXXX" + blob[4:])

    def test_bad_version_rejected(self):
        blob = bytearray(cont.pack_container(0, "cbc", bytes(16), {"zblob": b""}))
        blob[4] = 99
        with pytest.raises(ValueError, match="version"):
            cont.parse_container(bytes(blob))

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            cont.pack_container(0, "gcm", bytes(16), {})
        blob = bytearray(cont.pack_container(0, "cbc", bytes(16), {"zblob": b""}))
        blob[6] = 9
        with pytest.raises(ValueError, match="mode"):
            cont.parse_container(bytes(blob))

    def test_oversized_iv_rejected(self):
        with pytest.raises(ValueError, match="IV"):
            cont.pack_container(0, "cbc", bytes(17), {})

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="shorter"):
            cont.parse_container(b"SECZ")


@given(
    data=st.dictionaries(
        st.sampled_from(sorted(cont.SECTION_IDS)),
        st.binary(max_size=200),
        max_size=len(cont.SECTION_IDS),
    ),
    scheme_id=st.integers(0, 3),
    mode=st.sampled_from(["cbc", "ctr"]),
)
@settings(max_examples=50, deadline=None)
def test_container_roundtrip_property(data, scheme_id, mode):
    iv = bytes(16) if mode == "cbc" else bytes(8)
    blob = cont.pack_container(scheme_id, mode, iv, data)
    parsed = cont.parse_container(blob)
    assert parsed.sections == data
    assert parsed.scheme_id == scheme_id
    assert parsed.cipher_mode == mode
    assert parsed.iv == iv


@given(blob=st.binary(max_size=300))
@settings(max_examples=100, deadline=None)
def test_parser_never_crashes_on_garbage(blob):
    """Fuzz: arbitrary bytes either parse or raise ValueError — never
    any other exception type."""
    try:
        cont.parse_container(blob)
    except ValueError:
        pass
