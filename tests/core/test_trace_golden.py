"""Golden trace fixtures: one ``*.trace.json`` per scheme variant.

``tests/data/traces/<variant>.trace.json`` pins the *structure* each
scheme's compress + decompress traces must produce — the span tree
shape (names, nesting, attr keys) and the set of counters touched.
Variants are scheme names, optionally suffixed ``@ctr`` for the CTR
fast path (which adds the ``aes.keystream_*`` counters and the
``keystream_overlap_ms``/``keystream_wait_ms`` attrs on the compress
span).
Timings and byte counts are runtime-dependent and deliberately not
compared; what these fixtures catch is an accidental reshuffle of the
pipeline stages or a counter silently vanishing from a code path.

Regenerate after an *intentional* trace-shape change with::

    PYTHONPATH=src python tests/core/test_trace_golden.py --regen

and review the fixture diff like any other format change.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import trace
from repro.core.pipeline import SecureCompressor
from repro.core.schemes import SCHEMES
from repro.sz import huffman

FIXTURE_DIR = Path(__file__).resolve().parent.parent / "data" / "traces"
KEY = bytes(range(16))

#: Field schemes exercised through the SECB v2 archive; each pins the
#: archive bookkeeping counters plus that scheme's pipeline spans.
ARCHIVE_SCHEMES = ("cmpr_encr", "encr_huffman", "encr_quant")

#: Golden variants: every scheme under the default CBC mode, plus the
#: CTR fast path on the scheme that exercises keystream prefetch most,
#: plus one archive life-cycle run per supported field scheme.
VARIANTS = (
    sorted(SCHEMES)
    + ["cmpr_encr@ctr"]
    + [f"archive@{s}" for s in ARCHIVE_SCHEMES]
)


def _clear_codec_cache() -> None:
    # The codec cache is process-global; a warm cache flips
    # codec_cache_misses to codec_cache_hits and the counter-key
    # comparison with it. Golden runs always start cold.
    huffman.codec_cache_clear()


def _run_archive(scheme: str) -> dict:
    """Archive life cycle (add + dedup + extract + gc), traced.

    The counters in a Tracer export are process-wide deltas since the
    tracer was created, so the ``archive.*`` and ``lz.*`` bookkeeping
    lands in the fixture alongside the field scheme's pipeline spans.
    """
    import os
    import tempfile

    from repro.archive import ArchiveStore

    _clear_codec_cache()
    rng = np.random.default_rng(42)
    field = np.cumsum(
        rng.standard_normal((24, 24)), axis=1
    ).astype(np.float32)
    log = b"".join(b"step %06d ok\n" % i for i in range(600))
    noise = rng.integers(0, 256, 6000, dtype=np.uint8).tobytes()
    tr = trace.Tracer()
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "golden.secb")
        store = ArchiveStore.create(
            path,
            key=KEY,
            random_state=np.random.default_rng(0),
            chunk_bits=9,
            min_chunk=128,
            max_chunk=2048,
        )
        store.add_bytes("log", log, codec="lz77h")
        store.add_bytes("log-copy", log, codec="lz77h")  # chunks_deduped
        store.add_bytes("noise", noise, codec="zlib")
        store.add_field(
            "field", field, scheme=scheme, error_bound=1e-3, tracer=tr
        )
        assert store.extract_bytes("log-copy") == log
        np.testing.assert_allclose(
            store.extract_field("field"), field, atol=1e-3
        )
        store.remove("noise")
        assert store.gc() > 0  # blobs_gced
    return trace.validate(tr.export())


def _run_scheme(variant: str) -> dict:
    """Deterministic tiny compress + decompress, traced."""
    if variant.startswith("archive@"):
        return _run_archive(variant.partition("@")[2])
    _clear_codec_cache()
    scheme, _, mode = variant.partition("@")
    mode = mode or "cbc"
    rng = np.random.default_rng(42)
    field = np.cumsum(
        rng.standard_normal((24, 24)), axis=1
    ).astype(np.float32)
    sc = SecureCompressor(
        scheme=scheme,
        error_bound=1e-3,
        key=None if scheme == "none" else KEY,
        cipher_mode=mode,
        random_state=np.random.default_rng(0),
        allow_nonce_reuse=(mode == "ctr"),
    )
    tr = trace.Tracer()
    result = sc.compress(field, tracer=tr)
    restored = sc.decompress(result.container, tracer=tr)
    np.testing.assert_allclose(restored, field, atol=1e-3)
    return trace.validate(tr.export())


def _span_shape(span: dict) -> dict:
    """Structure only: name, attr keys, children — no timings/bytes."""
    return {
        "name": span["name"],
        "attr_keys": sorted(span["attrs"]),
        "children": [_span_shape(c) for c in span["children"]],
    }


def _doc_shape(doc: dict) -> dict:
    return {
        "roots": [_span_shape(r) for r in doc["roots"]],
        "counter_keys": sorted(doc["counters"]),
    }


@pytest.mark.parametrize("variant", VARIANTS)
def test_trace_matches_golden(variant):
    path = FIXTURE_DIR / f"{variant}.trace.json"
    assert path.exists(), (
        f"missing golden fixture {path.name}; regenerate with "
        f"`PYTHONPATH=src python {__file__} --regen`"
    )
    golden = json.loads(path.read_text())
    assert golden["schema"] == trace.SCHEMA
    assert _doc_shape(_run_scheme(variant)) == _doc_shape(golden)


def test_fixtures_are_valid_trace_documents():
    for variant in VARIANTS:
        doc = json.loads((FIXTURE_DIR / f"{variant}.trace.json").read_text())
        trace.validate(doc)


def test_no_stray_fixtures():
    # Every fixture corresponds to a registered variant, so a renamed
    # scheme cannot leave a stale golden behind unnoticed.
    found = {p.stem.replace(".trace", "") for p in FIXTURE_DIR.glob("*.trace.json")}
    assert found == set(VARIANTS)


def _regen(only: set[str] | None = None) -> None:
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for variant in VARIANTS:
        if only and variant not in only:
            continue
        doc = _run_scheme(variant)
        path = FIXTURE_DIR / f"{variant}.trace.json"
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        # Optional variant names after --regen restrict the rewrite
        # (keeps unrelated fixture diffs out of a focused change).
        names = {a for a in sys.argv[1:] if not a.startswith("-")}
        _regen(names or None)
    else:
        print(__doc__)
