"""Golden trace fixtures: one ``*.trace.json`` per scheme.

``tests/data/traces/<scheme>.trace.json`` pins the *structure* each
scheme's compress + decompress traces must produce — the span tree
shape (names, nesting, attr keys) and the set of counters touched.
Timings and byte counts are runtime-dependent and deliberately not
compared; what these fixtures catch is an accidental reshuffle of the
pipeline stages or a counter silently vanishing from a code path.

Regenerate after an *intentional* trace-shape change with::

    PYTHONPATH=src python tests/core/test_trace_golden.py --regen

and review the fixture diff like any other format change.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import trace
from repro.core.pipeline import SecureCompressor
from repro.core.schemes import SCHEMES
from repro.sz import huffman

FIXTURE_DIR = Path(__file__).resolve().parent.parent / "data" / "traces"
KEY = bytes(range(16))


def _clear_codec_cache() -> None:
    # The codec cache is process-global; a warm cache flips
    # codec_cache_misses to codec_cache_hits and the counter-key
    # comparison with it. Golden runs always start cold.
    huffman.codec_cache_clear()


def _run_scheme(scheme: str) -> dict:
    """Deterministic tiny compress + decompress, traced."""
    _clear_codec_cache()
    rng = np.random.default_rng(42)
    field = np.cumsum(
        rng.standard_normal((24, 24)), axis=1
    ).astype(np.float32)
    sc = SecureCompressor(
        scheme=scheme,
        error_bound=1e-3,
        key=None if scheme == "none" else KEY,
        random_state=np.random.default_rng(0),
    )
    tr = trace.Tracer()
    result = sc.compress(field, tracer=tr)
    restored = sc.decompress(result.container, tracer=tr)
    np.testing.assert_allclose(restored, field, atol=1e-3)
    return trace.validate(tr.export())


def _span_shape(span: dict) -> dict:
    """Structure only: name, attr keys, children — no timings/bytes."""
    return {
        "name": span["name"],
        "attr_keys": sorted(span["attrs"]),
        "children": [_span_shape(c) for c in span["children"]],
    }


def _doc_shape(doc: dict) -> dict:
    return {
        "roots": [_span_shape(r) for r in doc["roots"]],
        "counter_keys": sorted(doc["counters"]),
    }


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_trace_matches_golden(scheme):
    path = FIXTURE_DIR / f"{scheme}.trace.json"
    assert path.exists(), (
        f"missing golden fixture {path.name}; regenerate with "
        f"`PYTHONPATH=src python {__file__} --regen`"
    )
    golden = json.loads(path.read_text())
    assert golden["schema"] == trace.SCHEMA
    assert _doc_shape(_run_scheme(scheme)) == _doc_shape(golden)


def test_fixtures_are_valid_trace_documents():
    for scheme in sorted(SCHEMES):
        doc = json.loads((FIXTURE_DIR / f"{scheme}.trace.json").read_text())
        trace.validate(doc)


def test_no_stray_fixtures():
    # Every fixture corresponds to a registered scheme, so a renamed
    # scheme cannot leave a stale golden behind unnoticed.
    found = {p.stem.replace(".trace", "") for p in FIXTURE_DIR.glob("*.trace.json")}
    assert found == set(SCHEMES)


def _regen() -> None:
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for scheme in sorted(SCHEMES):
        doc = _run_scheme(scheme)
        path = FIXTURE_DIR / f"{scheme}.trace.json"
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
