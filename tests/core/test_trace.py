"""The trace layer: span trees, the StageTimes shim, counters,
exporters, schema validation, parallel accumulation, and the
near-zero-cost guarantee for disabled tracing."""

import json
import threading
import time

import numpy as np
import pytest

from repro.core import trace
from repro.core.pipeline import SecureCompressor
from repro.core.timing import StageTimes
from repro.core.trace import (
    NULL_TRACER,
    SCHEMA,
    Span,
    Tracer,
    chrome_trace,
    format_tree,
    span_from_dict,
    tracer_for,
    validate,
)
from repro.parallel.chunked import ChunkedSecureCompressor

KEY = bytes(range(16))


@pytest.fixture
def field():
    return np.random.default_rng(3).random((16, 24, 24)).astype(np.float32)


# ----------------------------------------------------------------------
# Span trees
# ----------------------------------------------------------------------


class TestSpanTree:
    def test_nesting_and_attributes(self):
        tr = Tracer()
        with tr.span("outer", bytes_in=100) as outer:
            with tr.span("inner") as inner:
                inner.annotate(k=1)
            outer.bytes_out = 10
        assert len(tr.roots) == 1
        root = tr.roots[0]
        assert root.name == "outer"
        assert root.bytes_in == 100 and root.bytes_out == 10
        assert [c.name for c in root.children] == ["inner"]
        assert root.children[0].attrs == {"k": 1}

    def test_sibling_spans_and_durations(self):
        tr = Tracer()
        with tr.span("root"):
            with tr.stage("a"):
                time.sleep(0.002)
            with tr.stage("b"):
                pass
        root = tr.roots[0]
        assert [c.name for c in root.children] == ["a", "b"]
        assert root.seconds >= root.children[0].seconds > 0.0
        assert root.children[0].start <= root.children[0].start + root.seconds

    def test_span_survives_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        assert [s.name for s in tr.roots] == ["boom"]

    def test_round_trip_through_dict(self):
        span = Span(name="a", start=0.1, seconds=0.5, bytes_in=3,
                    attrs={"x": "y"},
                    children=[Span(name="b", seconds=0.2)])
        again = span_from_dict(span.to_dict())
        assert again.to_dict() == span.to_dict()

    def test_walk_is_depth_first(self):
        span = Span(name="a", children=[
            Span(name="b", children=[Span(name="c")]), Span(name="d"),
        ])
        assert [s.name for s in span.walk()] == ["a", "b", "c", "d"]


# ----------------------------------------------------------------------
# StageTimes compatibility shim
# ----------------------------------------------------------------------


class TestStageTimesShim:
    def test_tracer_for_stagetimes_mirrors_stages(self):
        st = StageTimes()
        tr = tracer_for(st)
        assert not tr.enabled
        with tr.stage("encrypt"):
            pass
        with tr.stage("encrypt"):
            pass
        assert set(st.seconds) == {"encrypt"}
        assert st.seconds["encrypt"] > 0.0

    def test_tracer_for_dict_and_none_and_identity(self):
        d = {}
        tr = tracer_for(d)
        with tr.stage("lossless"):
            pass
        assert "lossless" in d
        assert tracer_for(None) is NULL_TRACER
        t = Tracer()
        assert tracer_for(t) is t
        with pytest.raises(TypeError):
            tracer_for(42)

    def test_enabled_tracer_mirrors_stage_into_scoped_dict(self):
        mirror = {}
        tr = Tracer()
        with tr.span("root", mirror=mirror):
            with tr.stage("quantize"):
                pass
        assert set(mirror) == {"quantize"}
        # Structural spans never land in the mirror.
        assert "root" not in mirror

    def test_inner_mirror_shadows_outer(self):
        outer, inner = {}, {}
        tr = Tracer()
        with tr.span("a", mirror=outer):
            with tr.span("b", mirror=inner):
                with tr.stage("predict"):
                    pass
            with tr.stage("encrypt"):
                pass
        assert set(inner) == {"predict"}
        assert set(outer) == {"encrypt"}

    def test_disabled_tracer_same_keys_as_enabled(self, field):
        """The flat stage map must not depend on whether tracing is on."""
        sc = SecureCompressor("encr_huffman", 1e-3, key=KEY,
                              random_state=np.random.default_rng(0))
        plain = sc.compress(field)
        sc2 = SecureCompressor("encr_huffman", 1e-3, key=KEY,
                               random_state=np.random.default_rng(0))
        traced = sc2.compress(field, tracer=Tracer())
        assert set(plain.times.seconds) == set(traced.times.seconds)
        _, t_plain = sc.decompress_with_times(plain.container)
        _, t_traced = sc2.decompress_with_times(
            traced.container, tracer=Tracer()
        )
        assert set(t_plain.seconds) == set(t_traced.seconds)

    def test_scheme_protect_accepts_stagetimes_directly(self, field):
        """The bench harness path: StageTimes straight into protect."""
        from repro.core.schemes import get_scheme
        from repro.crypto.aes import AES128
        from repro.sz.compressor import SZCompressor

        frame = SZCompressor(1e-3).compress(field)
        st = StageTimes()
        get_scheme("encr_huffman").protect(
            frame.sections, AES128(KEY), bytes(16), "cbc", 6, st
        )
        assert {"lossless", "encrypt"} <= set(st.seconds)


# ----------------------------------------------------------------------
# Pipeline traces and the documented schema
# ----------------------------------------------------------------------


class TestPipelineTrace:
    def test_compress_decompress_trace_validates(self, field):
        sc = SecureCompressor("encr_huffman", 1e-3, key=KEY)
        tr = Tracer()
        result = sc.compress(field, tracer=tr)
        sc.decompress(result.container, tracer=tr)
        doc = validate(tr.export())
        assert doc["schema"] == SCHEMA
        assert [r["name"] for r in doc["roots"]] == ["compress", "decompress"]
        comp = doc["roots"][0]
        assert comp["bytes_in"] == field.nbytes
        assert comp["bytes_out"] == len(result.container)
        assert comp["attrs"]["scheme"] == "encr_huffman"
        children = [c["name"] for c in comp["children"]]
        assert children == ["sz.compress", "protect"]
        stage_names = {c["name"] for c in comp["children"][0]["children"]}
        assert {"quantize", "predict", "huffman_build",
                "huffman_encode", "side_channels"} <= stage_names
        # The document is valid JSON end to end.
        json.dumps(doc)

    def test_trace_counters_are_deltas(self, field):
        sc = SecureCompressor("cmpr_encr", 1e-3, key=KEY)
        warm = sc.compress(field)  # counts outside the tracer window
        tr = Tracer()
        sc.compress(field, tracer=tr)
        doc = tr.export()
        blocks = doc["counters"]["aes.blocks_encrypted"]
        # One compress worth of blocks, not two.
        assert blocks * 16 < 2 * len(warm.container)
        assert doc["counters"]["zlib.deflate_in_bytes"] > 0

    def test_byte_flow_is_consistent(self, field):
        """Each lossless/encrypt stage's bytes_out feeds the next."""
        sc = SecureCompressor("cmpr_encr", 1e-3, key=KEY)
        tr = Tracer()
        sc.compress(field, tracer=tr)
        protect = tr.roots[0].children[-1]
        lossless, encrypt = protect.children
        assert lossless.name == "lossless" and encrypt.name == "encrypt"
        assert encrypt.bytes_in == lossless.bytes_out
        # CBC padding: ciphertext is the padded plaintext length.
        assert encrypt.bytes_out == (encrypt.bytes_in // 16 + 1) * 16

    def test_ctr_mode_counts_keystream_blocks(self, field):
        sc = SecureCompressor("encr_huffman", 1e-3, key=KEY,
                              cipher_mode="ctr")
        tr = Tracer()
        r = sc.compress(field, tracer=tr)
        sc.decompress(r.container, tracer=tr)
        assert tr.export()["counters"]["aes.blocks_keystream"] > 0

    def test_lane_decode_counters(self):
        data = np.random.default_rng(1).random(120_000).astype(np.float32)
        from repro.sz.compressor import SZCompressor

        comp = SZCompressor(1e-3, huffman_lanes=4, anchor_stride=2048)
        frame = comp.compress(data)
        before = trace.counters_snapshot()
        comp.decompress(frame)
        after = trace.counters_snapshot()
        assert after.get("fastdecode.lanes", 0) - before.get(
            "fastdecode.lanes", 0) == 4
        assert after.get("fastdecode.segments", 0) > before.get(
            "fastdecode.segments", 0)

    def test_codec_cache_hit_and_miss_counters(self):
        from repro.sz import huffman

        symbols = np.arange(300, dtype=np.int64)
        counts = np.arange(1, 301, dtype=np.int64)
        code = huffman.build_code(symbols, counts)
        huffman.codec_cache_clear()
        before = trace.counters_snapshot()
        huffman.decoder_for(code)
        huffman.decoder_for(code)
        after = trace.counters_snapshot()
        assert after.get("huffman.codec_cache_misses", 0) - before.get(
            "huffman.codec_cache_misses", 0) == 1
        assert after.get("huffman.codec_cache_hits", 0) - before.get(
            "huffman.codec_cache_hits", 0) == 1


# ----------------------------------------------------------------------
# Counters API
# ----------------------------------------------------------------------


class TestCounters:
    def test_count_and_merge(self):
        before = trace.counters_snapshot().get("test.widgets", 0)
        trace.count("test.widgets")
        trace.count("test.widgets", 4)
        trace.merge_counters({"test.widgets": 5})
        assert trace.counters_snapshot()["test.widgets"] == before + 10

    def test_thread_safety(self):
        name = "test.threaded"
        base = trace.counters_snapshot().get(name, 0)

        def worker():
            for _ in range(1000):
                trace.count(name)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert trace.counters_snapshot()[name] == base + 8000

    def test_known_counters_are_unique(self):
        assert len(set(trace.KNOWN_COUNTERS)) == len(trace.KNOWN_COUNTERS)


# ----------------------------------------------------------------------
# Exporters and validation
# ----------------------------------------------------------------------


class TestExporters:
    def _doc(self, field):
        sc = SecureCompressor("encr_quant", 1e-3, key=KEY)
        tr = Tracer()
        r = sc.compress(field, tracer=tr)
        sc.decompress(r.container, tracer=tr)
        return tr.export()

    def test_chrome_trace_events(self, field):
        doc = self._doc(field)
        ct = chrome_trace(doc)
        assert ct["displayTimeUnit"] == "ms"
        events = ct["traceEvents"]
        assert all(e["ph"] == "X" for e in events)
        # Each root gets its own tid row; spans carry byte-flow args.
        assert {e["tid"] for e in events} == {0, 1}
        comp = next(e for e in events if e["name"] == "compress")
        assert comp["args"]["bytes_in"] == field.nbytes
        json.dumps(ct)

    def test_format_tree_renders_all_spans(self, field):
        doc = self._doc(field)
        text = format_tree(doc)
        for name in ("compress", "sz.compress", "quantize",
                     "decompress", "counters:"):
            assert name in text

    def test_validate_accepts_own_export(self, field):
        assert validate(self._doc(field))["schema"] == SCHEMA

    @pytest.mark.parametrize("mutate, match", [
        (lambda d: d.pop("schema"), "schema"),
        (lambda d: d.update(roots="x"), "roots"),
        (lambda d: d.update(counters=[1]), "counters"),
        (lambda d: d["roots"][0].pop("name"), "name"),
        (lambda d: d["roots"][0].update(seconds=-1), "seconds"),
        (lambda d: d["roots"][0].update(bytes_in="big"), "bytes_in"),
        (lambda d: d["roots"][0]["attrs"].update(bad=[1, 2]), "attrs"),
        (lambda d: d["roots"][0]["children"][0].pop("start"), "start"),
    ])
    def test_validate_rejects_malformed(self, field, mutate, match):
        doc = self._doc(field)
        mutate(doc)
        with pytest.raises(ValueError, match=match):
            validate(doc)

    def test_validate_reports_nested_path(self):
        doc = {"schema": SCHEMA, "counters": {}, "roots": [{
            "name": "a", "start": 0, "seconds": 0, "bytes_in": None,
            "bytes_out": None, "attrs": {}, "children": [{
                "name": "", "start": 0, "seconds": 0, "bytes_in": None,
                "bytes_out": None, "attrs": {}, "children": [],
            }],
        }]}
        with pytest.raises(ValueError, match=r"roots\[0\].children\[0\]"):
            validate(doc)


# ----------------------------------------------------------------------
# Parallel accumulation
# ----------------------------------------------------------------------


class TestParallelTrace:
    def test_chunked_trace_collects_all_slabs(self, field):
        cc = ChunkedSecureCompressor(
            "encr_huffman", 1e-3, key=KEY, n_chunks=4, n_workers=2,
            base_seed=9,
        )
        tr = Tracer()
        blob = cc.compress(field, tracer=tr)
        out = cc.decompress(blob, tracer=tr)
        assert np.max(np.abs(out - field)) <= 1e-3
        doc = validate(tr.export())
        comp, decomp = doc["roots"]
        assert comp["name"] == "chunked.compress"
        assert decomp["name"] == "chunked.decompress"
        slabs = [c for c in comp["children"] if c["name"] == "slab"]
        assert len(slabs) == 4
        assert sorted(s["attrs"]["index"] for s in slabs) == [0, 1, 2, 3]
        # Every slab carries a full worker-side compress subtree.
        assert all(s["children"][0]["name"] == "compress" for s in slabs)
        # Worker-process counters were folded into the parent's window.
        assert doc["counters"]["aes.blocks_encrypted"] > 0

    def test_in_process_chunked_does_not_double_count(self, field):
        cc = ChunkedSecureCompressor(
            "cmpr_encr", 1e-3, key=KEY, n_chunks=2, n_workers=1,
            base_seed=9,
        )
        tr = Tracer()
        cc.compress(field, tracer=tr)
        counted = tr.export()["counters"]["aes.blocks_encrypted"]
        # Reference: the same two slabs compressed directly.
        tr2 = Tracer()
        sc = SecureCompressor("cmpr_encr", 1e-3, key=KEY)
        half = field.shape[0] // 2
        sc.compress(field[:half], tracer=tr2)
        sc.compress(field[half:], tracer=tr2)
        reference = tr2.export()["counters"]["aes.blocks_encrypted"]
        assert counted == reference

    def test_threads_record_into_one_tracer(self):
        tr = Tracer()

        def worker(i):
            with tr.span(f"thread-{i}"):
                with tr.stage("work"):
                    pass

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        doc = validate(tr.export())
        names = sorted(r["name"] for r in doc["roots"])
        assert names == sorted(f"thread-{i}" for i in range(6))
        # No cross-thread nesting: each root has exactly its own stage.
        assert all(len(r["children"]) == 1 for r in doc["roots"])


# ----------------------------------------------------------------------
# Disabled-mode overhead
# ----------------------------------------------------------------------


class TestDisabledOverhead:
    def test_disabled_span_returns_shared_noop(self):
        tr = Tracer(enabled=False)
        a = tr.span("x")
        b = tr.span("y")
        assert a is b  # no allocation per disabled structural span
        with a as span:
            span.bytes_out = 7  # swallowed, not stored
            span.annotate(k=1)
        assert tr.roots == []
        assert tr.export()["roots"] == []

    def test_disabled_overhead_under_two_percent(self, field):
        """Acceptance bound: disabled tracing must cost < 2% of the
        bench_fig6_bandwidth measurement path (one traceable compress +
        decompress).  Measured structurally: per-call cost of the
        disabled span/stage machinery times the actual number of spans
        the pipeline opens, compared against the pipeline's wall time —
        which avoids comparing two noisy end-to-end runs."""
        sc = SecureCompressor("encr_huffman", 1e-4, key=KEY)
        # Count the spans/stages one compress+decompress opens.
        tr = Tracer()
        result = sc.compress(field, tracer=tr)
        sc.decompress(result.container, tracer=tr)
        n_spans = sum(1 for root in tr.roots for _ in root.walk())

        # Wall time of the untraced path (best of 3 to shed noise).
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            r = sc.compress(field)
            sc.decompress(r.container)
            best = min(best, time.perf_counter() - t0)

        # Per-call cost of the disabled machinery, averaged over many
        # iterations of the worst (mirrored-stage) variant.
        disabled = tracer_for(StageTimes())
        reps = 20_000
        t0 = time.perf_counter()
        for _ in range(reps):
            with disabled.stage("encrypt"):
                pass
        per_span = (time.perf_counter() - t0) / reps

        overhead = per_span * n_spans
        assert overhead < 0.02 * best, (
            f"disabled tracing costs {overhead * 1e6:.1f} us for "
            f"{n_spans} spans vs {best * 1e3:.2f} ms pipeline time"
        )
