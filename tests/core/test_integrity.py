"""Authenticated containers (encrypt-then-MAC)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import integrity
from repro.core.pipeline import SecureCompressor
from repro.security.attacks import flip_bit


class TestPrimitives:
    def test_roundtrip(self, key):
        blob = b"container bytes"
        wrapped = integrity.authenticate(blob, key)
        assert wrapped.startswith(integrity.MAGIC)
        assert integrity.verify_and_strip(wrapped, key) == blob

    def test_tag_length(self, key):
        wrapped = integrity.authenticate(b"", key)
        assert len(wrapped) == len(integrity.MAGIC) + integrity.TAG_BYTES

    def test_wrong_key_rejected(self, key):
        wrapped = integrity.authenticate(b"data", key)
        with pytest.raises(integrity.AuthenticationError):
            integrity.verify_and_strip(wrapped, bytes(16))

    def test_any_bit_flip_detected(self, key):
        wrapped = integrity.authenticate(b"payload" * 10, key)
        for bit in (0, 40, 8 * 36, 8 * len(wrapped) - 1):
            with pytest.raises(integrity.AuthenticationError):
                integrity.verify_and_strip(flip_bit(wrapped, bit), key)

    def test_truncation_detected(self, key):
        wrapped = integrity.authenticate(b"payload", key)
        for cut in (3, 20, len(wrapped) - 1):
            with pytest.raises(integrity.AuthenticationError):
                integrity.verify_and_strip(wrapped[:cut], key)

    def test_mac_key_differs_from_master(self, key):
        assert integrity.derive_mac_key(key) != key
        assert len(integrity.derive_mac_key(key)) == 32

    def test_mac_key_requires_16_bytes(self):
        with pytest.raises(ValueError):
            integrity.derive_mac_key(b"short")

    @given(data=st.binary(max_size=256))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data):
        key = bytes(range(16))
        assert integrity.verify_and_strip(
            integrity.authenticate(data, key), key
        ) == data


class TestPipelineIntegration:
    def test_authenticated_roundtrip(self, smooth_field, key):
        sc = SecureCompressor("encr_huffman", 1e-3, key=key,
                              authenticate=True)
        blob = sc.compress(smooth_field).container
        assert blob.startswith(integrity.MAGIC)
        out = sc.decompress(blob)
        assert np.max(np.abs(out.astype(np.float64)
                             - smooth_field.astype(np.float64))) <= 1e-3

    def test_every_flip_detected(self, smooth_field, key):
        """The complete answer to the paper's Sec. III-A motivation:
        with authentication, no single-bit flip survives."""
        sc = SecureCompressor("encr_huffman", 1e-3, key=key,
                              authenticate=True)
        blob = sc.compress(smooth_field).container
        rng = np.random.default_rng(0)
        for bit in rng.choice(8 * len(blob), size=64, replace=False):
            with pytest.raises((integrity.AuthenticationError, ValueError)):
                sc.decompress(flip_bit(blob, int(bit)))

    def test_plain_reader_accepts_authenticated(self, smooth_field, key):
        # A reader configured without authenticate=True still verifies
        # when it sees the SECA magic (it has the key).
        writer = SecureCompressor("encr_huffman", 1e-3, key=key,
                                  authenticate=True)
        reader = SecureCompressor("encr_huffman", 1e-3, key=key)
        blob = writer.compress(smooth_field).container
        out = reader.decompress(blob)
        assert out.shape == smooth_field.shape

    def test_strict_reader_rejects_unauthenticated(self, smooth_field, key):
        writer = SecureCompressor("encr_huffman", 1e-3, key=key)
        reader = SecureCompressor("encr_huffman", 1e-3, key=key,
                                  authenticate=True)
        blob = writer.compress(smooth_field).container
        with pytest.raises(integrity.AuthenticationError):
            reader.decompress(blob)

    def test_authenticate_requires_key(self):
        with pytest.raises(ValueError, match="key"):
            SecureCompressor("none", authenticate=True)

    def test_authenticated_none_scheme(self, smooth_field, key):
        # Plain SZ + MAC: integrity without confidentiality.
        sc = SecureCompressor("none", 1e-3, key=key, authenticate=True)
        out = sc.decompress(sc.compress(smooth_field).container)
        assert out.shape == smooth_field.shape
