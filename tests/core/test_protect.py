"""The codec-agnostic protect/unprotect helpers."""

import numpy as np
import pytest

from repro.core.protect import protect_sections, unprotect_container
from repro.sz import SZCompressor


@pytest.fixture(scope="module")
def sections(smooth_field):
    return SZCompressor(1e-3).compress(smooth_field).sections


class TestProtectHelpers:
    @pytest.mark.parametrize("scheme", ["none", "cmpr_encr", "encr_quant",
                                        "encr_huffman"])
    def test_roundtrip(self, scheme, sections, key):
        blob = protect_sections(sections, scheme, key=key)
        back = unprotect_container(blob, key=key)
        assert back == dict(sections)

    def test_expected_scheme_enforced(self, sections, key):
        blob = protect_sections(sections, "encr_huffman", key=key)
        with pytest.raises(ValueError, match="expected"):
            unprotect_container(blob, key=key, expected_scheme="cmpr_encr")

    def test_scheme_autodetected(self, sections, key):
        blob = protect_sections(sections, "cmpr_encr", key=key)
        assert unprotect_container(blob, key=key) == dict(sections)

    def test_missing_key_rejected(self, sections):
        with pytest.raises(ValueError, match="requires a key"):
            protect_sections(sections, "encr_huffman")
        blob = protect_sections(sections, "none")
        assert unprotect_container(blob) == dict(sections)

    def test_key_needed_to_read_encrypted(self, sections, key):
        blob = protect_sections(sections, "encr_huffman", key=key)
        with pytest.raises(ValueError, match="requires a key"):
            unprotect_container(blob)

    def test_authentication(self, sections, key):
        blob = protect_sections(sections, "none", key=key, authenticate=True)
        assert blob[:4] == b"SECA"
        assert unprotect_container(blob, key=key) == dict(sections)
        with pytest.raises(ValueError):
            unprotect_container(blob[:-1] + b"\x00", key=key)

    def test_deterministic_with_seed(self, sections, key):
        a = protect_sections(sections, "encr_huffman", key=key,
                             random_state=np.random.default_rng(9))
        b = protect_sections(sections, "encr_huffman", key=key,
                             random_state=np.random.default_rng(9))
        assert a == b

    def test_ctr_mode(self, sections, key):
        blob = protect_sections(sections, "cmpr_encr", key=key,
                                cipher_mode="ctr")
        assert unprotect_container(blob, key=key) == dict(sections)
