"""The four combination schemes at the section level."""

import numpy as np
import pytest

from repro.core.schemes import SCHEMES, get_scheme
from repro.core.timing import StageTimes
from repro.crypto.aes import AES128
from repro.sz import SZCompressor
from repro.sz.compressor import SECTION_ORDER

IV = bytes(range(16))


@pytest.fixture(scope="module")
def frame(smooth_field):
    return SZCompressor(1e-4).compress(smooth_field)


def _roundtrip(scheme_name, frame, cipher):
    scheme = get_scheme(scheme_name)
    times = StageTimes()
    out = scheme.protect(frame.sections, cipher, IV, "cbc", 6, times)
    back = scheme.unprotect(out, cipher, IV, "cbc", StageTimes())
    return out, back, times


class TestRegistry:
    def test_names_and_ids(self):
        assert set(SCHEMES) == {
            "none", "cmpr_encr", "encr_quant", "encr_huffman",
            "encr_huffman_raw",
        }
        for name, scheme in SCHEMES.items():
            assert get_scheme(name) is scheme
            assert get_scheme(scheme.scheme_id) is scheme

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            get_scheme("rot13")
        with pytest.raises(ValueError, match="unknown scheme id"):
            get_scheme(77)

    def test_key_requirements(self):
        assert not SCHEMES["none"].requires_key
        assert all(
            SCHEMES[n].requires_key
            for n in ("cmpr_encr", "encr_quant", "encr_huffman")
        )


class TestRoundTrips:
    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_protect_unprotect(self, name, frame, key):
        cipher = AES128(key)
        _, back, _ = _roundtrip(name, frame, cipher)
        assert back == {k: frame.sections[k] for k in SECTION_ORDER}

    @pytest.mark.parametrize("name", ["cmpr_encr", "encr_quant", "encr_huffman"])
    def test_requires_cipher(self, name, frame):
        scheme = get_scheme(name)
        with pytest.raises(ValueError, match="key"):
            scheme.protect(frame.sections, None, IV, "cbc", 6, StageTimes())

    def test_none_works_without_cipher(self, frame):
        _, back, _ = _roundtrip("none", frame, None)
        assert back["meta"] == frame.sections["meta"]

    @pytest.mark.parametrize("name", ["cmpr_encr", "encr_quant", "encr_huffman"])
    def test_wrong_key_fails(self, name, frame, key):
        scheme = get_scheme(name)
        out = scheme.protect(frame.sections, AES128(key), IV, "cbc", 6,
                             StageTimes())
        wrong = AES128(bytes(16))
        with pytest.raises(ValueError):
            restored = scheme.unprotect(out, wrong, IV, "cbc", StageTimes())
            # If padding happens to validate, the section table must not.
            if restored == {k: frame.sections[k] for k in SECTION_ORDER}:
                raise AssertionError("wrong key decrypted successfully?!")

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_ctr_mode(self, name, frame, key):
        scheme = get_scheme(name)
        cipher = AES128(key) if scheme.requires_key else None
        nonce = b"12345678"
        out = scheme.protect(frame.sections, cipher, nonce, "ctr", 6,
                             StageTimes())
        back = scheme.unprotect(out, cipher, nonce, "ctr", StageTimes())
        assert back == {k: frame.sections[k] for k in SECTION_ORDER}


class TestEncryptionPlacement:
    def test_encrypted_bytes_ordering(self, frame, key):
        """Paper Sec. IV: Encr-Huffman encrypts the least, Cmpr-Encr
        the most (pre-zlib)."""
        huff = SCHEMES["encr_huffman"].encrypted_bytes(frame.sections)
        quant = SCHEMES["encr_quant"].encrypted_bytes(frame.sections)
        full = SCHEMES["cmpr_encr"].encrypted_bytes(frame.sections)
        assert 0 < huff < quant <= full
        assert SCHEMES["none"].encrypted_bytes(frame.sections) == 0

    def test_encr_huffman_encrypts_exactly_the_tree(self, frame):
        assert SCHEMES["encr_huffman"].encrypted_bytes(frame.sections) == len(
            frame.sections["tree"]
        )

    def test_encr_quant_includes_tree_codes_meta(self, frame):
        expected = sum(
            len(frame.sections[k]) for k in ("meta", "tree", "codes")
        )
        assert SCHEMES["encr_quant"].encrypted_bytes(frame.sections) == expected

    def test_stage_times_recorded(self, frame, key):
        cipher = AES128(key)
        for name in ("cmpr_encr", "encr_quant", "encr_huffman"):
            _, _, times = _roundtrip(name, frame, cipher)
            assert "encrypt" in times.seconds
            assert "lossless" in times.seconds

    def test_cmpr_encr_output_is_ciphertext_only(self, frame, key):
        out, _, _ = _roundtrip("cmpr_encr", frame, AES128(key))
        assert set(out) == {"cipher"}

    def test_white_box_outputs_are_zlib(self, frame, key):
        import zlib
        for name in ("none", "encr_quant", "encr_huffman"):
            cipher = AES128(bytes(16)) if name != "none" else None
            scheme = get_scheme(name)
            out = scheme.protect(frame.sections, cipher, IV, "cbc", 6,
                                 StageTimes())
            assert set(out) == {"zblob"}
            zlib.decompress(out["zblob"])  # must be a valid stream


class TestCompressionImpact:
    def test_encr_quant_hurts_ratio_on_compressible_data(self, key):
        """Paper Fig. 5: randomizing the quantization array before zlib
        destroys the lossless stage's leverage on compressible data."""
        from repro.datasets import generate

        data = generate("q2", size="tiny")
        frame = SZCompressor(1e-3).compress(data)
        cipher = AES128(key)
        sizes = {}
        for name in ("none", "cmpr_encr", "encr_quant", "encr_huffman"):
            scheme = get_scheme(name)
            out = scheme.protect(
                frame.sections, cipher if name != "none" else None, IV,
                "cbc", 6, StageTimes(),
            )
            sizes[name] = sum(len(v) for v in out.values())
        assert sizes["encr_quant"] > sizes["none"]
        # Encr-Huffman keeps >99% of the baseline CR.
        assert sizes["encr_huffman"] <= sizes["none"] * 1.01
        # Cmpr-Encr adds only padding + header slack.
        assert sizes["cmpr_encr"] <= sizes["none"] * 1.01 + 64
