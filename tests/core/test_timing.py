"""StageTimes instrumentation."""

import time

import pytest

from repro.core.timing import STAGE_ORDER, StageTimes


class TestStageTimes:
    def test_add_accumulates(self):
        times = StageTimes()
        times.add("encrypt", 0.5)
        times.add("encrypt", 0.25)
        assert times.seconds["encrypt"] == pytest.approx(0.75)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            StageTimes().add("x", -1.0)

    def test_context_manager(self):
        times = StageTimes()
        with times.stage("sleepy"):
            time.sleep(0.01)
        assert times.seconds["sleepy"] >= 0.009

    def test_context_manager_records_on_exception(self):
        times = StageTimes()
        with pytest.raises(RuntimeError):
            with times.stage("failing"):
                raise RuntimeError("boom")
        assert "failing" in times.seconds

    def test_merge_stagetimes_and_dict(self):
        a = StageTimes({"x": 1.0})
        a.merge(StageTimes({"x": 0.5, "y": 2.0}))
        a.merge({"z": 0.1})
        assert a.seconds == {"x": 1.5, "y": 2.0, "z": 0.1}

    def test_total_and_fraction(self):
        times = StageTimes({"a": 3.0, "b": 1.0})
        assert times.total == pytest.approx(4.0)
        assert times.fraction("a") == pytest.approx(0.75)
        assert times.fraction("missing") == 0.0

    def test_fraction_empty(self):
        assert StageTimes().fraction("a") == 0.0

    def test_ordered_respects_stage_order(self):
        times = StageTimes({"lossless": 1.0, "quantize": 2.0, "custom": 3.0})
        names = [name for name, _ in times.ordered()]
        assert names.index("quantize") < names.index("lossless")
        assert names[-1] == "custom"

    def test_stage_order_covers_pipeline(self):
        for stage in ("quantize", "predict", "encrypt", "lossless"):
            assert stage in STAGE_ORDER
