"""The paper's evaluation metrics (Eq. 1-3)."""

import numpy as np
import pytest

from repro.core import metrics


class TestCompressionRatio:
    def test_basic(self):
        assert metrics.compression_ratio(100, 10) == 10.0

    def test_expansion_below_one(self):
        assert metrics.compression_ratio(10, 100) == 0.1

    def test_rejects_zero_compressed(self):
        with pytest.raises(ValueError):
            metrics.compression_ratio(100, 0)

    def test_rejects_negative_original(self):
        with pytest.raises(ValueError):
            metrics.compression_ratio(-1, 10)


class TestBandwidth:
    def test_mb_per_second(self):
        assert metrics.bandwidth_mb_s(1024 * 1024, 1.0) == 1.0
        assert metrics.bandwidth_mb_s(10 * 1024 * 1024, 2.0) == 5.0

    def test_rejects_zero_time(self):
        with pytest.raises(ValueError):
            metrics.bandwidth_mb_s(100, 0.0)


class TestOverhead:
    def test_paper_semantics(self):
        # >100% = slower than baseline, <100% = faster (Encr-Huffman).
        assert metrics.overhead_percent(1.05, 1.0) == pytest.approx(105.0)
        assert metrics.overhead_percent(0.93, 1.0) == pytest.approx(93.0)

    def test_rejects_bad_baseline(self):
        with pytest.raises(ValueError):
            metrics.overhead_percent(1.0, 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            metrics.overhead_percent(-1.0, 1.0)


class TestNormalizedCr:
    def test_unity_baseline(self):
        assert metrics.normalized_cr(9.9, 10.0) == pytest.approx(0.99)

    def test_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            metrics.normalized_cr(1.0, 0.0)


class TestErrorMetrics:
    def test_max_abs_error(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.1, 1.9, 3.0])
        assert metrics.max_abs_error(a, b) == pytest.approx(0.1)

    def test_max_abs_error_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            metrics.max_abs_error(np.zeros(3), np.zeros(4))

    def test_psnr_identical_is_inf(self):
        a = np.linspace(0, 1, 100)
        assert metrics.psnr(a, a) == float("inf")

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(0)
        a = np.linspace(0, 1, 1000)
        small = metrics.psnr(a, a + 1e-6 * rng.standard_normal(1000))
        large = metrics.psnr(a, a + 1e-2 * rng.standard_normal(1000))
        assert small > large

    def test_psnr_constant_signal(self):
        a = np.zeros(10)
        assert metrics.psnr(a, a + 0.1) == float("-inf")
