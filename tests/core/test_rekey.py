"""Key rotation without recompression."""

import numpy as np
import pytest

from repro.core.pipeline import SecureCompressor
from repro.core.rekey import rotate_key

NEW_KEY = b"fresh-key-2026!!"


def _max_err(a, b):
    return float(np.max(np.abs(a.astype(np.float64) - b.astype(np.float64))))


class TestRotateKey:
    @pytest.mark.parametrize("scheme", ["cmpr_encr", "encr_quant",
                                        "encr_huffman", "encr_huffman_raw"])
    def test_rotation_roundtrip(self, scheme, smooth_field, key):
        writer = SecureCompressor(scheme, 1e-3, key=key)
        blob = writer.compress(smooth_field).container
        rotated = rotate_key(blob, key, NEW_KEY)
        reader = SecureCompressor(scheme, 1e-3, key=NEW_KEY)
        out = reader.decompress(rotated)
        assert _max_err(out, smooth_field) <= 1e-3

    def test_old_key_no_longer_works(self, smooth_field, key):
        writer = SecureCompressor("encr_huffman", 1e-3, key=key)
        rotated = rotate_key(writer.compress(smooth_field).container,
                             key, NEW_KEY)
        stale = SecureCompressor("encr_huffman", 1e-3, key=key)
        with pytest.raises(ValueError):
            out = stale.decompress(rotated)
            if _max_err(out, smooth_field) <= 1e-3:
                raise AssertionError("old key still decodes")

    def test_wrong_old_key_rejected(self, smooth_field, key):
        writer = SecureCompressor("cmpr_encr", 1e-3, key=key)
        blob = writer.compress(smooth_field).container
        with pytest.raises(ValueError):
            rotate_key(blob, bytes(16), NEW_KEY)

    def test_none_scheme_passthrough(self, smooth_field):
        writer = SecureCompressor("none", 1e-3)
        blob = writer.compress(smooth_field).container
        assert rotate_key(blob, bytes(16), NEW_KEY) == blob

    def test_authenticated_rotation(self, smooth_field, key):
        writer = SecureCompressor("encr_huffman", 1e-3, key=key,
                                  authenticate=True)
        blob = writer.compress(smooth_field).container
        rotated = rotate_key(blob, key, NEW_KEY)
        assert rotated[:4] == b"SECA"
        reader = SecureCompressor("encr_huffman", 1e-3, key=NEW_KEY,
                                  authenticate=True)
        assert _max_err(reader.decompress(rotated), smooth_field) <= 1e-3

    def test_fresh_iv_after_rotation(self, smooth_field, key):
        from repro.core.container import parse_container

        writer = SecureCompressor("encr_huffman", 1e-3, key=key)
        blob = writer.compress(smooth_field).container
        rotated = rotate_key(blob, key, NEW_KEY)
        assert parse_container(blob).iv != parse_container(rotated).iv

    def test_rotation_is_cheap_for_encr_huffman(self, smooth_field, key):
        """Rotation must not redo SZ work: it should run in a small
        fraction of a full recompression."""
        import time

        writer = SecureCompressor("encr_huffman", 1e-3, key=key)
        blob = writer.compress(smooth_field).container
        t0 = time.perf_counter()
        writer.compress(smooth_field)
        t_full = time.perf_counter() - t0
        t0 = time.perf_counter()
        rotate_key(blob, key, NEW_KEY)
        t_rotate = time.perf_counter() - t0
        assert t_rotate < t_full
