"""The scheme-selection advisor."""

import numpy as np
import pytest

from repro.core.advisor import recommend_scheme
from repro.datasets import generate


class TestRecommendScheme:
    def test_full_randomness_forces_cmpr_encr(self, smooth_field):
        rec = recommend_scheme(smooth_field, 1e-3,
                               require_full_randomness=True)
        assert rec.scheme == "cmpr_encr"
        assert any("NIST" in r for r in rec.reasons)

    def test_compressible_data_gets_encr_huffman(self):
        data = generate("q2", size="tiny")
        rec = recommend_scheme(data, 1e-3)
        assert rec.scheme == "encr_huffman"
        assert rec.predictable_fraction > 0.9

    def test_hard_data_gets_encr_huffman(self):
        data = generate("nyx", size="tiny")
        rec = recommend_scheme(data, 1e-7)
        assert rec.scheme == "encr_huffman"
        assert rec.predictable_fraction < 0.5

    def test_evidence_fields_are_fractions(self, smooth_field):
        rec = recommend_scheme(smooth_field, 1e-4)
        assert 0.0 <= rec.predictable_fraction <= 1.0
        assert 0.0 <= rec.tree_fraction_of_quant <= 1.0
        assert 0.0 <= rec.quant_fraction_of_stream <= 1.0

    def test_reasons_always_given(self, noisy_field):
        rec = recommend_scheme(noisy_field, 1e-2)
        assert rec.reasons

    def test_sampling_keeps_it_cheap(self):
        # A large field must be sampled, not compressed outright.
        data = np.zeros(2_000_000, dtype=np.float32)
        rec = recommend_scheme(data, 1e-3, sample_elements=4096)
        assert rec.scheme in ("encr_huffman", "cmpr_encr")
