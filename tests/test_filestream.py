"""Streaming file-to-file compression."""

import numpy as np
import pytest

from repro.datasets import generate, save_field
from repro.parallel import compress_file, decompress_file

KEY = bytes(range(16))


@pytest.fixture()
def field_file(tmp_path):
    data = generate("q2", size="tiny")
    path = tmp_path / "q2.bin"
    save_field(path, data)
    return str(path), data


class TestFileStream:
    def test_roundtrip(self, field_file, tmp_path):
        path, data = field_file
        secm = str(tmp_path / "q2.secm")
        raw = str(tmp_path / "restored.bin")
        n = compress_file(
            path, secm, data.shape, slab_rows=3,
            scheme="encr_huffman", error_bound=1e-4, key=KEY,
        )
        assert n == -(-data.shape[0] // 3)
        shape = decompress_file(
            secm, raw, scheme="encr_huffman", error_bound=1e-4, key=KEY
        )
        assert shape == data.shape
        out = np.fromfile(raw, dtype=np.float32).reshape(shape)
        assert np.max(np.abs(out.astype(np.float64)
                             - data.astype(np.float64))) <= 1e-4

    def test_compressed_smaller_than_raw(self, field_file, tmp_path):
        import os
        path, data = field_file
        secm = str(tmp_path / "q2.secm")
        compress_file(path, secm, data.shape, scheme="none",
                      error_bound=1e-3)
        assert os.path.getsize(secm) < data.nbytes / 3

    def test_single_slab(self, field_file, tmp_path):
        path, data = field_file
        secm = str(tmp_path / "one.secm")
        n = compress_file(path, secm, data.shape,
                          slab_rows=data.shape[0],
                          scheme="none", error_bound=1e-3)
        assert n == 1
        raw = str(tmp_path / "one.bin")
        assert decompress_file(secm, raw, scheme="none") == data.shape

    def test_size_mismatch_rejected(self, field_file, tmp_path):
        path, data = field_file
        with pytest.raises(ValueError, match="size"):
            compress_file(path, str(tmp_path / "x"),
                          (data.shape[0] + 1, *data.shape[1:]),
                          scheme="none")

    def test_bad_slab_rows(self, field_file, tmp_path):
        path, data = field_file
        with pytest.raises(ValueError, match="slab_rows"):
            compress_file(path, str(tmp_path / "x"), data.shape,
                          slab_rows=0, scheme="none")

    def test_corrupt_secm_rejected(self, field_file, tmp_path):
        path, data = field_file
        secm = tmp_path / "q2.secm"
        compress_file(path, str(secm), data.shape, scheme="none",
                      error_bound=1e-3)
        blob = secm.read_bytes()
        bad = tmp_path / "bad.secm"
        bad.write_bytes(b"XXXX" + blob[4:])
        with pytest.raises(ValueError, match="magic"):
            decompress_file(str(bad), str(tmp_path / "o"), scheme="none")
        short = tmp_path / "short.secm"
        short.write_bytes(blob[:-10])
        with pytest.raises(ValueError, match="truncated"):
            decompress_file(str(short), str(tmp_path / "o"), scheme="none")
        trailing = tmp_path / "trail.secm"
        trailing.write_bytes(blob + b"z")
        with pytest.raises(ValueError, match="trailing"):
            decompress_file(str(trailing), str(tmp_path / "o"), scheme="none")
