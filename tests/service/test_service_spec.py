"""docs/SERVICE.md cross-check: parse live SECP frames with only
``struct``, and pin the doc's tables to the code's constants.

Mirrors ``tests/test_format_spec.py``: the readers below are
re-implemented from the byte offsets documented in docs/SERVICE.md —
no repro parsing code — so the spec and ``repro.service.protocol``
cannot drift apart.
"""

import os
import re
import struct

import numpy as np

from repro.service import jobs, protocol

HERE = os.path.dirname(os.path.abspath(__file__))
SERVICE_MD = os.path.join(HERE, os.pardir, os.pardir, "docs", "SERVICE.md")

with open(SERVICE_MD, encoding="utf-8") as fh:
    DOC = fh.read()

# Documented layouts (SERVICE.md §2, §4) — written out independently.
FRAME_HEADER = struct.Struct("<4sBBH8sI")
SUBMIT_HEAD = struct.Struct("<BBBBdB")


def _section(heading: str) -> str:
    start = DOC.index(heading)
    end = DOC.find("\n## ", start + 1)
    return DOC[start:end] if end > 0 else DOC[start:]


def _table_rows(section: str) -> list[list[str]]:
    rows = []
    for line in section.splitlines():
        if not line.startswith("|") or set(line) <= {"|", "-", ":", " "}:
            continue
        cells = [cell.strip() for cell in line.strip("|").split("|")]
        if cells and not cells[0].isdigit():
            continue  # header row
        rows.append(cells)
    return rows


class TestDocTables:
    def test_verb_table_matches_code(self):
        documented = {
            int(row[0]): row[1] for row in _table_rows(_section("## 3. Verbs"))
        }
        assert documented == protocol.VERBS

    def test_error_table_matches_code(self):
        documented = {
            int(row[0]): row[1]
            for row in _table_rows(_section("## 6. Error codes"))
        }
        assert documented == protocol.ERRORS

    def test_state_table_matches_code(self):
        rows = _table_rows(_section("## 5. Job lifecycle"))
        documented = {int(row[0]): row[1].strip("`") for row in rows}
        assert documented == jobs.STATE_NAMES
        terminal = {int(row[0]) for row in rows if row[2] == "yes"}
        assert terminal == set(jobs.TERMINAL_STATES)

    def test_transitions_match_prose(self):
        # Every legal edge (and no other) is named in §5's bullet list.
        section = _section("## 5. Job lifecycle")
        for src, dst in jobs.LEGAL_TRANSITIONS:
            pair = (f"{jobs.STATE_NAMES[src]} → {jobs.STATE_NAMES[dst]}",
                    f"`{jobs.STATE_NAMES[src]} → {jobs.STATE_NAMES[dst]}")
            assert any(p in section for p in pair) or re.search(
                jobs.STATE_NAMES[src] + r" → .*" + jobs.STATE_NAMES[dst],
                section,
            ), (src, dst)
        assert "done →" not in section and "failed →" not in section

    def test_documented_constants(self):
        assert "`<4sBBH8sI`" in DOC and "(20 bytes)" in DOC
        assert "`<BBBBdB`" in DOC and "(13 bytes)" in DOC
        assert FRAME_HEADER.size == 20
        assert SUBMIT_HEAD.size == 13
        assert protocol.FRAME_HEADER.format == FRAME_HEADER.format
        assert protocol.SUBMIT_HEAD.format == SUBMIT_HEAD.format
        assert "ASCII `SECP`" in DOC
        assert protocol.PROTOCOL_MAGIC == b"SECP"
        assert "**255** = server default" in DOC
        assert protocol.SCHEME_DEFAULT == 255


class TestStructOnlyReparse:
    """Decode real frames exactly as SERVICE.md §2/§4 document them."""

    def test_reparse_response_frame(self):
        blob = protocol.pack_frame(
            protocol.VERB_STATUS, status=protocol.ERR_NOT_DONE,
            job_id=bytes(range(8)), payload=b"\x01",
        )
        magic, version, verb, status, job_id, plen = FRAME_HEADER.unpack(
            blob[:20]
        )
        assert magic == b"SECP"
        assert version == 1
        assert verb == 2  # STATUS per the §3 table
        assert status == 6  # ERR_NOT_DONE per the §6 table
        assert job_id == bytes(range(8))
        assert plen == 1
        assert blob[20:] == b"\x01"
        assert len(blob) == 20 + plen

    def test_reparse_submit_payload(self):
        field = np.linspace(0, 1, 30, dtype=np.float32).reshape(5, 6)
        blob = protocol.pack_submit(
            field.tobytes(), field.shape, "float32",
            eb=2e-3, scheme_id=3, priority=7, flags=1,
        )
        priority, flags, scheme_id, dtype_code, eb, ndim = \
            SUBMIT_HEAD.unpack_from(blob)
        assert (priority, flags, scheme_id, dtype_code) == (7, 1, 3, 0)
        assert eb == 2e-3
        assert ndim == 2
        dims = struct.unpack_from(f"<{ndim}Q", blob, SUBMIT_HEAD.size)
        assert dims == (5, 6)
        offset = SUBMIT_HEAD.size + 8 * ndim
        raw = np.frombuffer(blob[offset:], dtype="<f4").reshape(dims)
        np.testing.assert_array_equal(raw, field)
        # "exactly prod(dims) x itemsize bytes — nothing else"
        assert len(blob) == offset + 5 * 6 * 4
