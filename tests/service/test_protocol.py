"""SECP framing and SUBMIT codec unit tests (no server involved)."""

import struct

import numpy as np
import pytest

from repro.service import protocol


class TestFrameCodec:
    def test_roundtrip(self):
        blob = protocol.pack_frame(
            protocol.VERB_SUBMIT, status=protocol.STATUS_OK,
            job_id=b"\x01" * 8, payload=b"hello",
        )
        verb, status, job_id, length = protocol.unpack_header(
            blob[:protocol.FRAME_HEADER.size]
        )
        assert (verb, status, job_id, length) == \
            (protocol.VERB_SUBMIT, 0, b"\x01" * 8, 5)
        assert blob[protocol.FRAME_HEADER.size:] == b"hello"

    def test_header_is_20_bytes(self):
        assert protocol.FRAME_HEADER.size == 20

    def test_bad_magic(self):
        blob = bytearray(protocol.pack_frame(protocol.VERB_PING))
        blob[:4] = b"NOPE"
        with pytest.raises(protocol.ProtocolError) as exc:
            protocol.unpack_header(bytes(blob[:20]))
        assert exc.value.code == protocol.ERR_MAGIC

    def test_bad_version(self):
        blob = bytearray(protocol.pack_frame(protocol.VERB_PING))
        blob[4] = 99
        with pytest.raises(protocol.ProtocolError) as exc:
            protocol.unpack_header(bytes(blob[:20]))
        assert exc.value.code == protocol.ERR_VERSION

    def test_oversized_payload_length(self):
        header = protocol.FRAME_HEADER.pack(
            protocol.PROTOCOL_MAGIC, protocol.PROTOCOL_VERSION,
            protocol.VERB_PING, 0, b"\x00" * 8, protocol.MAX_PAYLOAD + 1,
        )
        with pytest.raises(protocol.ProtocolError) as exc:
            protocol.unpack_header(header)
        assert exc.value.code == protocol.ERR_TOO_LARGE

    def test_bad_job_id_length(self):
        with pytest.raises(ValueError):
            protocol.pack_frame(protocol.VERB_PING, job_id=b"short")

    @pytest.mark.parametrize("size", [0, 1, 19, 21])
    def test_short_or_long_header_is_protocol_error(self, size):
        """A truncated/overlong header must raise ProtocolError, not
        struct.error (found by the exception-contract lint rule)."""
        blob = protocol.pack_frame(protocol.VERB_PING) + b"\x00"
        with pytest.raises(protocol.ProtocolError) as exc:
            protocol.unpack_header(bytes(blob[:size]))
        assert exc.value.code == protocol.ERR_PAYLOAD

    def test_frame_helpers(self):
        frame = protocol.Frame(verb=protocol.VERB_FETCH,
                               status=protocol.ERR_NOT_DONE,
                               job_id=b"\x00" * 8, payload=b"")
        assert not frame.ok
        assert frame.error_name == "ERR_NOT_DONE"
        ok = protocol.Frame(verb=protocol.VERB_PING, status=0,
                            job_id=b"\x00" * 8, payload=b"")
        assert ok.ok


class TestSubmitCodec:
    def test_roundtrip(self):
        field = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        payload = protocol.pack_submit(
            field.tobytes(), field.shape, "float32",
            eb=1e-4, scheme_id=3, priority=5,
            flags=protocol.FLAG_DETACHED,
        )
        spec = protocol.unpack_submit(payload)
        assert spec["priority"] == 5
        assert spec["flags"] == protocol.FLAG_DETACHED
        assert spec["scheme_id"] == 3
        assert spec["dtype"] == "float32"
        assert spec["eb"] == 1e-4
        assert spec["shape"] == (2, 3, 4)
        restored = np.frombuffer(spec["field"], dtype=np.float32)
        np.testing.assert_array_equal(restored.reshape(2, 3, 4), field)

    def test_float64(self):
        field = np.linspace(0, 1, 8, dtype=np.float64)
        payload = protocol.pack_submit(field.tobytes(), field.shape,
                                       "float64")
        spec = protocol.unpack_submit(payload)
        assert spec["dtype"] == "float64"
        assert spec["scheme_id"] == protocol.SCHEME_DEFAULT
        assert spec["eb"] == 0.0

    @pytest.mark.parametrize("mutate, message", [
        (lambda p: p[:5], "shorter than head"),
        (lambda p: p[:protocol.SUBMIT_HEAD.size + 4], "truncated in dims"),
        (lambda p: p + b"x", "do not match"),
        (lambda p: p[:-1], "do not match"),
    ])
    def test_malformed_payloads(self, mutate, message):
        field = np.zeros(6, dtype=np.float32)
        payload = protocol.pack_submit(field.tobytes(), field.shape,
                                       "float32")
        with pytest.raises(protocol.ProtocolError) as exc:
            protocol.unpack_submit(mutate(payload))
        assert exc.value.code == protocol.ERR_PAYLOAD
        assert message in str(exc.value)

    def test_bad_dtype_code(self):
        payload = bytearray(protocol.pack_submit(
            np.zeros(2, dtype=np.float32).tobytes(), (2,), "float32"
        ))
        payload[3] = 7  # dtype code offset in the head
        with pytest.raises(protocol.ProtocolError) as exc:
            protocol.unpack_submit(bytes(payload))
        assert exc.value.code == protocol.ERR_PAYLOAD

    def test_zero_dim_rejected(self):
        head = protocol.SUBMIT_HEAD.pack(16, 0, 255, 0, 0.0, 1)
        payload = head + struct.pack("<1Q", 0)
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack_submit(payload)

    def test_nan_eb_rejected(self):
        field = np.zeros(2, dtype=np.float32)
        payload = bytearray(protocol.pack_submit(
            field.tobytes(), (2,), "float32"
        ))
        payload[4:12] = struct.pack("<d", float("nan"))
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack_submit(bytes(payload))

    def test_ndim_bounds(self):
        with pytest.raises(ValueError):
            protocol.pack_submit(b"", (), "float32")
        with pytest.raises(ValueError):
            protocol.pack_submit(b"", (1, 1, 1, 1, 1), "float32")
