"""Graceful shutdown, restart/resume, and disconnect semantics."""

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core.pipeline import SecureCompressor
from repro.service import ServiceClient, ServiceConfig, serve_in_background
from repro.service import protocol
from repro.service.store import JobStore

KEY = bytes(range(16))
SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                   os.pardir, os.pardir, "src")


def small_field(seed: int = 0) -> np.ndarray:
    gen = np.random.default_rng(seed)
    return gen.standard_normal((8, 8, 8)).cumsum(axis=0).astype(np.float32)


def wait_for(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise TimeoutError(f"timed out waiting for {message}")


class TestSigtermPersistence:
    def test_sigterm_persists_queue_and_second_serve_resumes(self, tmp_path):
        """The acceptance path: kill an ingest-only daemon holding
        queued jobs, then drain them with a second daemon on the same
        store.

        This is the suite's slowest test; the ~1 s is the real
        ``python -m repro.cli serve`` subprocess (interpreter + numpy
        import), which is the point — SIGTERM semantics need a real
        process.  Every wait in here is a bounded poll or a join with
        timeout, never a fixed sleep.
        """
        sock = str(tmp_path / "secz.sock")
        store = str(tmp_path / "jobs.sqlite")
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--socket", sock, "--store", store, "--workers", "0",
             "--key-hex", KEY.hex()],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            wait_for(lambda: os.path.exists(sock), message="socket bind")
            fields = [small_field(i) for i in range(3)]
            with ServiceClient(sock) as client:
                job_ids = [client.submit(field, detached=True)
                           for field in fields]
                assert client.stat()["jobs"]["queued"] == 3
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, out.decode()
        assert b"shut down cleanly" in out

        # Every acknowledged job survived as a queued row.
        js = JobStore(store)
        assert js.counts_by_state()["queued"] == 3
        js.close()

        # A second daemon on the same store picks the jobs up and runs
        # them to completion; the original job ids keep working.
        config = ServiceConfig(key=KEY, workers=2)
        with serve_in_background(config, store, socket_path=sock):
            with ServiceClient(sock) as client:
                containers = [client.wait(jid) for jid in job_ids]
                assert client.stat()["store"]["jobs"]["done"] == 3
        sc = SecureCompressor(scheme="encr_huffman", error_bound=1e-3,
                              key=KEY)
        for container, field in zip(containers, fields):
            assert np.abs(sc.decompress(container) - field).max() <= 1e-3

    def test_interrupted_running_job_requeues(self, tmp_path):
        # Forge a store whose daemon died mid-job: the row says
        # `running`, but no process is working on it.
        store_path = str(tmp_path / "jobs.sqlite")
        field = small_field()
        config = ServiceConfig(key=KEY, workers=0)
        sock = str(tmp_path / "a.sock")
        with serve_in_background(config, store_path,
                                 socket_path=sock) as service:
            with ServiceClient(sock) as client:
                job_id = client.submit(field, detached=True)
            job = service.jobs[job_id]
            job.started_at = time.time()
            job.transition(1)  # running
            service.store.mark_running(job)
        js = JobStore(store_path)
        assert js.counts_by_state()["running"] == 1
        js.close()

        with serve_in_background(ServiceConfig(key=KEY, workers=1),
                                 store_path,
                                 socket_path=str(tmp_path / "b.sock")):
            with ServiceClient(str(tmp_path / "b.sock")) as client:
                container = client.wait(job_id)
        assert container[:4] == b"SECZ"


class TestDisconnectSemantics:
    def test_disconnect_cancels_non_detached_queued_job(self, tmp_path):
        sock = str(tmp_path / "secz.sock")
        config = ServiceConfig(key=KEY, workers=0)
        with serve_in_background(config, str(tmp_path / "jobs.sqlite"),
                                 socket_path=sock) as service:
            with ServiceClient(sock) as client:
                job_id = client.submit(small_field())  # not detached
            wait_for(
                lambda: service.jobs[job_id].state_name == "cancelled",
                message="disconnect cancellation",
            )
            with ServiceClient(sock) as client:
                assert client.status(job_id) == "cancelled"

    def test_detached_job_survives_disconnect(self, tmp_path):
        sock = str(tmp_path / "secz.sock")
        config = ServiceConfig(key=KEY, workers=1)
        with serve_in_background(config, str(tmp_path / "jobs.sqlite"),
                                 socket_path=sock):
            with ServiceClient(sock) as client:
                job_id = client.submit(small_field(), detached=True)
            with ServiceClient(sock) as client:
                container = client.wait(job_id)
        assert container[:4] == b"SECZ"

    def test_mid_frame_disconnect_is_harmless(self, tmp_path):
        sock = str(tmp_path / "secz.sock")
        config = ServiceConfig(key=KEY)
        with serve_in_background(config, str(tmp_path / "jobs.sqlite"),
                                 socket_path=sock):
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.connect(sock)
            raw.sendall(protocol.PROTOCOL_MAGIC + b"\x01")  # partial header
            raw.close()
            # The server must survive and keep answering new clients.
            with ServiceClient(sock) as client:
                client.ping()


class TestThreadHygiene:
    def test_no_leaked_prefetcher_threads(self, tmp_path):
        """CTR jobs spin up keystream prefetcher threads; a disconnect
        mid-flight and a full shutdown must leave none behind."""
        def prefetchers():
            return [t for t in threading.enumerate()
                    if t.name.startswith("ctr-keystream-prefetch")]

        sock = str(tmp_path / "secz.sock")
        config = ServiceConfig(key=KEY, workers=1, cipher_mode="ctr",
                               scheme="cmpr_encr")
        with serve_in_background(config, str(tmp_path / "jobs.sqlite"),
                                 socket_path=sock):
            client = ServiceClient(sock)
            job_id = client.submit(small_field(), detached=True)
            # Disconnect while the job may still be running.
            client.close()
            with ServiceClient(sock) as client2:
                client2.wait(job_id)
        wait_for(lambda: not prefetchers(), timeout=10,
                 message="prefetcher threads to exit")
        assert prefetchers() == []

    def test_serve_loop_thread_exits(self, tmp_path):
        sock = str(tmp_path / "secz.sock")
        config = ServiceConfig(key=KEY)
        with serve_in_background(config, str(tmp_path / "jobs.sqlite"),
                                 socket_path=sock):
            pass
        assert not [t for t in threading.enumerate()
                    if t.name == "secz-serve-loop"]

    def test_socket_file_removed_on_shutdown(self, tmp_path):
        sock = str(tmp_path / "secz.sock")
        config = ServiceConfig(key=KEY)
        with serve_in_background(config, str(tmp_path / "jobs.sqlite"),
                                 socket_path=sock):
            assert os.path.exists(sock)
        assert not os.path.exists(sock)
