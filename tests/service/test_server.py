"""End-to-end tests of the ``secz serve`` daemon over a unix socket."""

import socket
import threading

import numpy as np
import pytest

from repro.core.pipeline import SecureCompressor
from repro.service import (
    JobPending,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    serve_in_background,
)
from repro.service import protocol

KEY = bytes(range(16))


def small_field(seed: int = 0, side: int = 8) -> np.ndarray:
    gen = np.random.default_rng(seed)
    return gen.standard_normal((side,) * 3).cumsum(axis=0).astype(np.float32)


@pytest.fixture()
def endpoint(tmp_path):
    """(socket path, store path) inside this test's tmp dir."""
    return str(tmp_path / "secz.sock"), str(tmp_path / "jobs.sqlite")


def serve(config, endpoint):
    sock, store = endpoint
    return serve_in_background(config, store, socket_path=sock)


class TestRoundTrip:
    def test_submit_wait_fetch(self, endpoint, smooth_field):
        config = ServiceConfig(key=KEY, error_bound=1e-3)
        with serve(config, endpoint):
            with ServiceClient(endpoint[0]) as client:
                client.ping()
                job_id = client.submit(smooth_field)
                container = client.wait(job_id)
                assert container[:4] == b"SECZ"
                assert client.status(job_id) == "done"
                # FETCH keeps answering after completion.
                assert client.fetch(job_id) == container
        sc = SecureCompressor(scheme="encr_huffman", error_bound=1e-3,
                              key=KEY)
        restored = sc.decompress(container)
        assert np.abs(restored - smooth_field).max() <= 1e-3

    def test_served_container_bit_identical_to_one_shot(
        self, endpoint, smooth_field
    ):
        # A seeded single-worker daemon must emit exactly the bytes a
        # one-shot seeded compressor does (the acceptance criterion).
        config = ServiceConfig(key=KEY, error_bound=1e-3, workers=1,
                               seed=1234)
        with serve(config, endpoint):
            with ServiceClient(endpoint[0]) as client:
                served = client.wait(client.submit(smooth_field))
        one_shot = SecureCompressor(
            scheme="encr_huffman", error_bound=1e-3, key=KEY,
            random_state=np.random.default_rng(1234),
        ).compress(smooth_field).container
        assert served == one_shot

    def test_float64_and_per_job_overrides(self, endpoint):
        field = np.linspace(0, 1, 4 ** 3).reshape(4, 4, 4)
        config = ServiceConfig(key=KEY, error_bound=1e-3)
        with serve(config, endpoint):
            with ServiceClient(endpoint[0]) as client:
                job_id = client.submit(field, eb=1e-5, scheme_id=1)
                container = client.wait(job_id)
        sc = SecureCompressor(scheme="cmpr_encr", error_bound=1e-5, key=KEY)
        restored = sc.decompress(container)
        assert restored.dtype == np.float64
        assert np.abs(restored - field).max() <= 1e-5

    def test_chunked_path_emits_secm(self, endpoint):
        field = small_field(side=16)
        config = ServiceConfig(key=KEY, chunk_axis_min=16, n_chunks=2)
        with serve(config, endpoint):
            with ServiceClient(endpoint[0]) as client:
                container = client.wait(client.submit(field))
        assert container[:4] == b"SECM"
        from repro.parallel.chunked import ChunkedSecureCompressor

        chunked = ChunkedSecureCompressor(
            scheme="encr_huffman", error_bound=1e-3, key=KEY, n_workers=1
        )
        restored = chunked.decompress(container)
        assert np.abs(restored - field).max() <= 1e-3


class TestConcurrency:
    def test_64_concurrent_submissions(self, endpoint):
        config = ServiceConfig(key=KEY, workers=2, queue_limit=128)
        containers = {}
        errors = []

        def one(i):
            try:
                with ServiceClient(endpoint[0]) as client:
                    jid = client.submit(small_field(i), detached=True)
                    containers[i] = client.wait(jid)
            except Exception as exc:  # surfaced after the join
                errors.append((i, exc))

        with serve(config, endpoint):
            threads = [threading.Thread(target=one, args=(i,))
                       for i in range(64)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            with ServiceClient(endpoint[0]) as client:
                stat = client.stat()
        assert not errors
        assert len(containers) == 64
        assert all(c[:4] == b"SECZ" for c in containers.values())
        assert stat["jobs"]["failed"] == 0
        assert stat["counters"]["service.jobs_submitted"] == 64

    def test_warm_daemon_reuses_codecs(self, endpoint, smooth_field):
        config = ServiceConfig(key=KEY, workers=1)
        with serve(config, endpoint):
            with ServiceClient(endpoint[0]) as client:
                for offset in range(4):
                    client.wait(client.submit(
                        smooth_field + np.float32(offset)
                    ))
                stat = client.stat()
        assert stat["codec_cache"]["hit_rate"] > 0
        assert stat["counters"]["service.batch_reuse_hits"] >= 1
        assert stat["counters"]["service.queue_wait_ms"] >= 1

    def test_ctr_keystream_overlap_in_stat(self, endpoint):
        # cmpr_encr encrypts the whole deflated blob, so the CTR
        # prefetcher has real work to overlap with compression.
        config = ServiceConfig(key=KEY, workers=1, cipher_mode="ctr",
                               scheme="cmpr_encr")
        with serve(config, endpoint):
            with ServiceClient(endpoint[0]) as client:
                client.wait(client.submit(small_field(side=24)))
                stat = client.stat()
        # overlap_ms samples the prefetch thread's busy time at the
        # moment the cipher takes the stream; on a field this small,
        # compression can beat the thread's first segment and 0.0 is a
        # legitimate reading (asserting > 0 here was flaky).  What is
        # deterministic: both clocks are exported and sane, and CTR
        # keystream was actually generated for the job.
        pool = stat["pool"]
        assert pool["keystream_overlap_ms"] >= 0
        assert pool["keystream_wait_ms"] >= 0
        assert stat["counters"]["aes.blocks_keystream"] > 0


class TestQueueSemantics:
    def test_priority_orders_ingested_jobs(self, endpoint):
        # Ingest-only mode: nothing runs, so the persisted queue order
        # is exactly the (priority, submission) order a worker would see.
        config = ServiceConfig(key=KEY, workers=0)
        with serve(config, endpoint) as service:
            with ServiceClient(endpoint[0]) as client:
                low = client.submit(small_field(0), priority=200,
                                    detached=True)
                high = client.submit(small_field(1), priority=1,
                                     detached=True)
                mid = client.submit(small_field(2), priority=50,
                                    detached=True)
            order = [job.job_id for job in service.store.queued_jobs()]
        assert order == [high, mid, low]

    def test_queue_full(self, endpoint):
        config = ServiceConfig(key=KEY, workers=0, queue_limit=2)
        with serve(config, endpoint):
            with ServiceClient(endpoint[0]) as client:
                client.submit(small_field(0), detached=True)
                client.submit(small_field(1), detached=True)
                with pytest.raises(ServiceError) as exc:
                    client.submit(small_field(2), detached=True)
        assert exc.value.code == protocol.ERR_QUEUE_FULL

    def test_fetch_before_done_and_cancel(self, endpoint):
        config = ServiceConfig(key=KEY, workers=0)
        with serve(config, endpoint):
            with ServiceClient(endpoint[0]) as client:
                job_id = client.submit(small_field(), detached=True)
                assert client.status(job_id) == "queued"
                with pytest.raises(JobPending):
                    client.fetch(job_id)
                client.cancel(job_id)
                assert client.status(job_id) == "cancelled"
                with pytest.raises(ServiceError) as exc:
                    client.fetch(job_id)
                assert exc.value.code == protocol.ERR_CANCELLED
                # A second cancel is an error: the job is terminal.
                with pytest.raises(ServiceError) as exc:
                    client.cancel(job_id)
                assert exc.value.code == protocol.ERR_UNCANCELLABLE

    def test_job_timeout_fails_job(self, endpoint):
        config = ServiceConfig(key=KEY, workers=1, job_timeout=1e-4)
        with serve(config, endpoint):
            with ServiceClient(endpoint[0]) as client:
                job_id = client.submit(small_field(side=16), detached=True)
                with pytest.raises(ServiceError) as exc:
                    client.wait(job_id)
                assert exc.value.code == protocol.ERR_JOB_FAILED
                assert "timed out" in str(exc.value)
                stat = client.stat()
        assert stat["counters"]["service.jobs_failed"] == 1


class TestProtocolErrors:
    def test_unknown_job(self, endpoint):
        config = ServiceConfig(key=KEY)
        with serve(config, endpoint):
            with ServiceClient(endpoint[0]) as client:
                with pytest.raises(ServiceError) as exc:
                    client.status(b"\xff" * 8)
        assert exc.value.code == protocol.ERR_UNKNOWN_JOB

    def test_unknown_scheme_id(self, endpoint):
        config = ServiceConfig(key=KEY)
        with serve(config, endpoint):
            with ServiceClient(endpoint[0]) as client:
                with pytest.raises(ServiceError) as exc:
                    client.submit(small_field(), scheme_id=42)
        assert exc.value.code == protocol.ERR_PAYLOAD

    def test_bad_magic_closes_connection(self, endpoint):
        config = ServiceConfig(key=KEY)
        with serve(config, endpoint):
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.settimeout(10)
            raw.connect(endpoint[0])
            try:
                raw.sendall(b"X" * 20)
                frame = protocol.recv_frame_blocking(raw)
                assert frame.status == protocol.ERR_MAGIC
                # The server hangs up after a framing error.
                assert raw.recv(1) == b""
            finally:
                raw.close()

    def test_payload_above_server_limit(self, endpoint):
        config = ServiceConfig(key=KEY, max_payload=1024, workers=0)
        with serve(config, endpoint):
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.settimeout(10)
            raw.connect(endpoint[0])
            try:
                header = protocol.FRAME_HEADER.pack(
                    protocol.PROTOCOL_MAGIC, protocol.PROTOCOL_VERSION,
                    protocol.VERB_SUBMIT, 0, b"\x00" * 8, 4096,
                )
                raw.sendall(header)
                frame = protocol.recv_frame_blocking(raw)
                assert frame.status == protocol.ERR_TOO_LARGE
            finally:
                raw.close()

    def test_stat_schema(self, endpoint):
        config = ServiceConfig(key=KEY)
        with serve(config, endpoint):
            with ServiceClient(endpoint[0]) as client:
                stat = client.stat()
        assert stat["schema"] == "secp-stat/1"
        assert set(stat["jobs"]) == {
            "queued", "running", "done", "failed", "cancelled"
        }
        assert stat["codec_cache"]["capacity"] > 0


class TestConfigValidation:
    def test_key_required_for_keyed_scheme(self, endpoint):
        from repro.service import CompressionService

        with pytest.raises(ValueError, match="requires"):
            CompressionService(ServiceConfig(key=None), endpoint[1])

    def test_keyless_scheme_allowed(self, endpoint, smooth_field):
        config = ServiceConfig(scheme="none", key=None)
        with serve(config, endpoint):
            with ServiceClient(endpoint[0]) as client:
                container = client.wait(client.submit(smooth_field))
        sc = SecureCompressor(scheme="none", error_bound=1e-3)
        assert np.abs(sc.decompress(container) - smooth_field).max() <= 1e-3

    def test_keyed_override_on_keyless_server_rejected(
        self, endpoint, smooth_field
    ):
        config = ServiceConfig(scheme="none", key=None)
        with serve(config, endpoint):
            with ServiceClient(endpoint[0]) as client:
                with pytest.raises(ServiceError) as exc:
                    client.submit(smooth_field, scheme_id=3)
        assert exc.value.code == protocol.ERR_PAYLOAD
