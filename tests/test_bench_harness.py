"""The benchmark harness library (measurement + formatting + figures)."""

import math

import numpy as np
import pytest

from repro.bench import (
    EBS,
    SCHEME_LABELS,
    dataset_cache,
    format_grid,
    format_series,
    measure_scheme,
    sweep,
)
from repro.bench.figures import mask_summary, predictability_mask, write_pgm
from repro.bench.tables import format_comparison


class TestHarness:
    def test_ebs_match_paper(self):
        assert EBS == (1e-7, 1e-6, 1e-5, 1e-4, 1e-3)

    def test_scheme_labels(self):
        assert SCHEME_LABELS["encr_huffman"] == "Encr-Huffman"
        assert SCHEME_LABELS["none"] == "Original SZ"

    def test_dataset_cache_identity(self):
        a = dataset_cache("nyx", size="tiny")
        b = dataset_cache("nyx", size="tiny")
        assert a is b
        assert not a.flags.writeable

    def test_measure_scheme_fields(self, key):
        data = dataset_cache("q2", size="tiny")
        m = measure_scheme(data, "encr_huffman", 1e-4, repeats=2, key=key)
        assert m.cr > 1.0
        assert m.compress_bw > 0
        assert m.decompress_bw > 0
        assert m.t_compress > 0
        assert m.encrypted_bytes > 0
        assert m.original_bytes == data.nbytes
        assert "encrypt" in m.compress_times.seconds

    def test_measure_none_scheme(self):
        data = dataset_cache("q2", size="tiny")
        m = measure_scheme(data, "none", 1e-3, repeats=1)
        assert m.encrypted_bytes == 0

    def test_measure_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            measure_scheme(np.zeros(8, np.float32), "none", 1e-3, repeats=0)

    def test_sweep_grid(self):
        results = sweep(("q2",), ("none",), ebs=(1e-3, 1e-4),
                        size="tiny", repeats=1)
        assert set(results) == {("q2", "none", 1e-3), ("q2", "none", 1e-4)}


class TestTables:
    def test_format_grid(self):
        text = format_grid(
            "Table X", ["a", "b"], ["1e-3", "1e-4"],
            [[1.5, 2.5], [3.5, float("nan")]],
        )
        assert "Table X" in text
        assert "1.500" in text
        assert "n/a" in text

    def test_format_grid_validates(self):
        with pytest.raises(ValueError):
            format_grid("t", ["a"], ["c"], [[1.0], [2.0]])
        with pytest.raises(ValueError):
            format_grid("t", ["a"], ["c", "d"], [[1.0]])

    def test_format_series(self):
        text = format_series(
            "Fig Y", ["1e-3"], {"SZ": [2.0], "Encr": [1.0]}, bar=True
        )
        assert "Fig Y" in text
        assert "#" in text

    def test_format_series_validates(self):
        with pytest.raises(ValueError, match="length"):
            format_series("f", ["a", "b"], {"s": [1.0]})

    def test_format_comparison(self):
        text = format_comparison(
            "cmp", [("case1", 1.0, 1.1)], labels=("paper", "ours")
        )
        assert "paper" in text and "1.100" in text


class TestFigures:
    def test_predictability_mask(self):
        data = dataset_cache("nyx", size="tiny")
        mask = predictability_mask(np.asarray(data), 1e-3)
        assert mask.shape == data.shape
        assert mask.dtype == bool
        summary = mask_summary(mask)
        assert summary["predictable"] + summary["unpredictable"] == data.size
        assert 0.0 <= summary["predictable_fraction"] <= 1.0

    def test_mask_tracks_bound(self):
        data = dataset_cache("nyx", size="tiny")
        tight = mask_summary(predictability_mask(np.asarray(data), 1e-7))
        loose = mask_summary(predictability_mask(np.asarray(data), 1e-3))
        assert loose["predictable_fraction"] > tight["predictable_fraction"]

    def test_write_pgm(self, tmp_path):
        mask = np.zeros((8, 10), dtype=bool)
        mask[2:5, 3:7] = True
        path = tmp_path / "mask.pgm"
        write_pgm(path, mask)
        raw = path.read_bytes()
        assert raw.startswith(b"P5\n10 8\n255\n")
        body = raw.split(b"255\n", 1)[1]
        assert len(body) == 80
        assert body[2 * 10 + 3] == 0  # predictable -> black
        assert body[0] == 160  # unpredictable -> gray

    def test_write_pgm_rejects_3d(self, tmp_path):
        with pytest.raises(ValueError, match="2-D"):
            write_pgm(tmp_path / "x.pgm", np.zeros((2, 2, 2), dtype=bool))
