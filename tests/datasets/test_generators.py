"""Synthetic dataset generators: determinism, shape, and the
compressibility character each field must have."""

import numpy as np
import pytest

from repro.datasets import generate
from repro.datasets.generators import GENERATORS
from repro.datasets.registry import DATASETS


class TestBasics:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_shape_and_dtype(self, name):
        data = generate(name, size="tiny")
        assert data.dtype == np.float32
        assert data.shape == DATASETS[name].preset_dims("tiny")

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_deterministic(self, name):
        a = generate(name, size="tiny", seed=7)
        b = generate(name, size="tiny", seed=7)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_seed_sensitivity(self, name):
        a = generate(name, size="tiny", seed=1)
        b = generate(name, size="tiny", seed=2)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_finite(self, name):
        assert np.isfinite(generate(name, size="tiny")).all()

    def test_explicit_dims(self):
        data = generate("nyx", dims=(8, 9, 10))
        assert data.shape == (8, 9, 10)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            generate("cesm")


class TestPhysicalCharacter:
    def test_cloudf48_sparse_nonnegative(self):
        data = generate("cloudf48", size="tiny")
        assert data.min() >= 0.0
        assert (data == 0).mean() > 0.5  # mostly clear air
        assert data.max() <= 5e-3  # mixing-ratio scale

    def test_qi_sparser_than_cloud(self):
        qi = generate("qi", size="tiny")
        cloud = generate("cloudf48", size="tiny")
        assert (qi == 0).mean() > (cloud == 0).mean()

    def test_nyx_lognormal_character(self):
        data = generate("nyx", size="tiny")
        assert data.min() > 0.0
        assert data.mean() == pytest.approx(1.0, rel=0.05)
        assert data.max() / np.median(data) > 50  # heavy tail

    def test_t_physical_range(self):
        data = generate("t", size="tiny")
        assert 150.0 < data.min() < data.max() < 350.0

    def test_height_monotone_levels(self):
        data = generate("height", size="tiny")
        level_means = data.mean(axis=(1, 2))
        assert (np.diff(level_means) > 0).all()

    def test_q2_humidity_scale(self):
        data = generate("q2", size="tiny")
        assert data.min() >= 0.0
        assert data.max() < 0.1

    def test_wf48_vortex_amplitude(self):
        data = generate("wf48", size="tiny")
        assert 5.0 < np.abs(data).max() < 40.0


class TestCompressibilityOrdering:
    def test_table2_ordering_at_loose_bound(self):
        """Paper Table II at eb=1e-3: QI and CLOUDf48 are far easier
        than Nyx/T; the synthetic fields must reproduce that ordering."""
        from repro.sz import SZCompressor
        from repro.sz.lossless import compress as zcompress
        from repro.core.container import pack_sections

        def cr(name, eb):
            data = generate(name, size="tiny")
            frame = SZCompressor(eb).compress(data)
            blob = zcompress(pack_sections(frame.sections))
            return data.nbytes / len(blob)

        easy = min(cr("qi", 1e-3), cr("cloudf48", 1e-3))
        hard = max(cr("nyx", 1e-3), cr("t", 1e-3))
        assert easy > 10 * hard

    def test_nyx_hard_at_tight_bound(self):
        from repro.sz import SZCompressor

        data = generate("nyx", size="tiny")
        frame = SZCompressor(1e-7).compress(data)
        # Paper Fig. 2: at 1e-7, Nyx is dominated by unpredictable data.
        assert frame.stats.predictable_fraction < 0.35
