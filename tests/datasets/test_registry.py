"""Dataset registry (Table I metadata)."""

import numpy as np
import pytest

from repro.datasets.registry import DATASETS, dataset_names, get_spec


class TestRegistry:
    def test_table1_complete(self):
        assert set(dataset_names()) == {
            "cloudf48", "wf48", "nyx", "q2", "height", "qi", "t"
        }

    def test_paper_dims_match_table1(self):
        assert get_spec("cloudf48").paper_dims == (100, 500, 500)
        assert get_spec("nyx").paper_dims == (512, 512, 512)
        assert get_spec("q2").paper_dims == (11, 1200, 1200)
        assert get_spec("height").paper_dims == (98, 1200, 1200)
        assert get_spec("qi").paper_dims == (11, 98, 1200, 1200)
        assert get_spec("t").paper_dims == (11, 98, 1200, 1200)

    def test_presets_grow(self):
        for spec in DATASETS.values():
            assert (
                spec.n_elements("tiny")
                < spec.n_elements("small")
                < spec.n_elements("medium")
            )

    def test_presets_preserve_rank(self):
        for spec in DATASETS.values():
            for size in ("tiny", "small", "medium"):
                assert len(spec.preset_dims(size)) == len(spec.paper_dims)

    def test_unknown_spec(self):
        with pytest.raises(ValueError, match="unknown"):
            get_spec("exaalt")

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="preset"):
            get_spec("nyx").preset_dims("gigantic")

    def test_n_elements(self):
        assert get_spec("nyx").n_elements("tiny") == 32**3
