"""SDRBench-style raw binary I/O."""

import numpy as np
import pytest

from repro.datasets.io import load_field, save_field


class TestIo:
    def test_roundtrip(self, tmp_path):
        data = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        path = tmp_path / "field.bin"
        save_field(path, data)
        assert np.array_equal(load_field(path, (2, 3, 4)), data)

    def test_float64_roundtrip(self, tmp_path):
        data = np.linspace(0, 1, 12).reshape(3, 4)
        path = tmp_path / "field64.bin"
        save_field(path, data)
        out = load_field(path, (3, 4), dtype=np.float64)
        assert np.array_equal(out, data)

    def test_wrong_shape_rejected(self, tmp_path):
        data = np.zeros(10, dtype=np.float32)
        path = tmp_path / "f.bin"
        save_field(path, data)
        with pytest.raises(ValueError, match="bytes"):
            load_field(path, (11,))

    def test_noncontiguous_input_saved_correctly(self, tmp_path):
        base = np.arange(24, dtype=np.float32).reshape(4, 6)
        view = base[:, ::2]  # non-contiguous
        path = tmp_path / "v.bin"
        save_field(path, view)
        assert np.array_equal(load_field(path, view.shape), view)
