"""Golden-digest tests pinning the wire formats.

A SECZ container written today must stay readable forever, so the byte
formats (frame sections, container framing, each scheme's transform)
are locked by SHA-256 digests of a fixed, fully-seeded compression.
If one of these fails, a format-affecting change happened: either fix
the regression, or — for a deliberate format evolution — bump the
relevant version constant, keep a decode path for the old version, and
re-record the digest.

Old-version readability is pinned the hard way: ``tests/data/
v1_containers/`` holds containers written by the v1 code (container v1
/ frame v2, single-stream Huffman) together with the SHA-256 of the
fields they decoded to, and every release must keep decoding them
bit-exactly.
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.core.pipeline import SecureCompressor
from repro.datasets import generate
from repro.sz import SZCompressor

KEY = bytes(range(16))

#: Recorded against format versions: container v2, SZ frame v2/v3.
#: The auto encoder writes the legacy v2 single-stream frame for this
#: small fixture (its sections are byte-identical to the pre-lane
#:  format), so the ``section:*`` digests pin that fallback; the
#: ``v3:*`` digests pin the multi-lane frame via explicit lane knobs.
GOLDEN = {
    "none": "bc0feabcf036570b9ea7035c589bff6ffbc73e63607575193f4e7e8c7cb159bc",
    "cmpr_encr": "fbd5f077f2e64de09086f69a218575a5aba394a42b1b6c20e7a1245000b44186",
    "encr_quant": "76daac4a28c44fd553c25ae378093924c01db0d760033b1c996866d980ed2768",
    "encr_huffman": "7756ef88aa7abb42d73186f6ba4cdcacc10bd25b5d58570182ca01b39a4b097d",
    "section:meta": "d9e5455248ea886e83f3905ff6df41a1ed7d4229560f03a3d88feeb7a6f6765a",
    "section:tree": "bf2b2cd9704e1ad88546bbe244680c8f61ae09811b37718d0db324496c1bb2b5",
    "section:codes": "6fad7bfe1771cda737f157da1f566e0764784de818fc57d01a79af76b822ab66",
    "section:unpred": "e90696b255cccdfbaf8df2c8f1b983c8b1eab7871581ba2fa3587a0785cd1993",
    "section:coeffs": "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
    "section:exact": "956ce4df0f4b576a2dee1a94dbac6a1097e4a06227e77f43d63b250ed90e60a3",
    "section:aux": "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
    "v3:meta": "3a45d6e5c3b5a5cb82cb244daf030c063259a5b7ca76d8a5270197b7f8475aa4",
    "v3:tree": "1be46aa4a75c5c07510b621264d2c7dfedb1b4b63f9337676730c84c6fd33402",
    "v3:codes": "9ff07a6197a887e878962acf82742d47b8fbeb3e9374e42a5afb36b96aa5967a",
    "lz7h": "a1a2509ea3581a49186f7697ad4ecd2ee8f6f5edd700ce571d64065177415234",
    "secb_v2": "decf63e6ac38933918d07f55259f3f39b01a300f078bdcb8ccc2ff284add7ffb",
}

V1_DIR = os.path.join(os.path.dirname(__file__), "data", "v1_containers")


@pytest.fixture(scope="module")
def reference_data():
    return np.asarray(generate("q2", size="tiny"))


@pytest.mark.parametrize("scheme", ["none", "cmpr_encr", "encr_quant",
                                    "encr_huffman"])
def test_container_digest_stable(scheme, reference_data):
    sc = SecureCompressor(
        scheme, 1e-4, key=KEY, random_state=np.random.default_rng(42)
    )
    blob = sc.compress(reference_data).container
    assert hashlib.sha256(blob).hexdigest() == GOLDEN[scheme], (
        f"{scheme} container bytes changed — wire-format regression, or a "
        "deliberate format change that needs a version bump (see module "
        "docstring)"
    )


def test_frame_section_digests_stable(reference_data):
    frame = SZCompressor(1e-4).compress(reference_data)
    for name, section in frame.sections.items():
        digest = hashlib.sha256(section).hexdigest()
        assert digest == GOLDEN[f"section:{name}"], (
            f"frame section {name!r} bytes changed — see module docstring"
        )


def test_v3_frame_section_digests_stable(reference_data):
    """Pin the multi-lane (frame v3) bytes, which the auto encoder only
    emits for large coded payloads, by forcing the lane knobs."""
    comp = SZCompressor(1e-4, huffman_lanes=4, anchor_stride=1024)
    frame = comp.compress(reference_data)
    assert SZCompressor.parse_meta(frame.sections["meta"])["version"] == 3
    for name in ("meta", "tree", "codes"):
        digest = hashlib.sha256(frame.sections[name]).hexdigest()
        assert digest == GOLDEN[f"v3:{name}"], (
            f"v3 frame section {name!r} bytes changed — see module docstring"
        )


def test_old_golden_container_still_decodes(reference_data):
    # Byte-stability implies decodability, but check the semantic
    # contract end-to-end anyway.
    sc = SecureCompressor(
        "encr_huffman", 1e-4, key=KEY,
        random_state=np.random.default_rng(42),
    )
    blob = sc.compress(reference_data).container
    out = sc.decompress(blob)
    err = np.max(np.abs(out.astype(np.float64)
                        - reference_data.astype(np.float64)))
    assert err <= 1e-4


def test_lz7h_frame_digest_stable():
    """The LZ7H frame writer is fully deterministic; pin its bytes so
    matcher or entropy-coder drift cannot silently change the format."""
    from repro.sz import lz77

    data = b"".join(b"shard %04d: loss=%.3f\n" % (i, 1.0 / (i + 1))
                    for i in range(1500))
    blob = lz77.compress(data)
    assert lz77.decompress(blob) == data
    assert hashlib.sha256(blob).hexdigest() == GOLDEN["lz7h"], (
        "LZ7H frame bytes changed — wire-format regression, or a "
        "deliberate format change that needs a version bump (§11)"
    )


def test_secb_v2_archive_digest_stable(tmp_path, reference_data):
    """A fully-seeded SECB v2 archive build (CBC IVs included) must
    reproduce byte-identically; archive frame drift fails here."""
    from repro.archive import ArchiveStore

    path = str(tmp_path / "golden.secb")
    store = ArchiveStore.create(
        path, key=KEY, cipher_mode="cbc",
        random_state=np.random.default_rng(42),
        chunk_bits=10, min_chunk=256, max_chunk=4096,
    )
    log = b"".join(b"step %06d ok\n" % i for i in range(900))
    store.add_bytes("log", log, codec="lz77h")
    store.add_bytes("log-copy", log, codec="lz77h")
    store.add_field("q2", reference_data, scheme="encr_huffman",
                    error_bound=1e-4)
    with open(path, "rb") as fh:
        blob = fh.read()
    assert hashlib.sha256(blob).hexdigest() == GOLDEN["secb_v2"], (
        "SECB v2 archive bytes changed — wire-format regression, or a "
        "deliberate format change that needs a version bump (§10.2)"
    )


# ----------------------------------------------------------------------
# v1 read-back compatibility
# ----------------------------------------------------------------------

with open(os.path.join(V1_DIR, "manifest.json")) as _f:
    V1_MANIFEST = json.load(_f)


@pytest.mark.parametrize("scheme", sorted(V1_MANIFEST))
def test_v1_container_decodes_bit_exactly(scheme):
    """Containers written before the multi-lane format (container v1,
    frame v2) must keep decoding to the *identical* field bytes."""
    entry = V1_MANIFEST[scheme]
    with open(os.path.join(V1_DIR, f"{scheme}.secz"), "rb") as f:
        blob = f.read()
    # The stored container must itself be pristine (fixture integrity).
    assert hashlib.sha256(blob).hexdigest() == entry["container_sha256"]
    sc = SecureCompressor(scheme, 1e-4, key=KEY)
    out = sc.decompress(blob)
    assert str(out.dtype) == entry["decoded_dtype"]
    assert list(out.shape) == entry["decoded_shape"]
    assert hashlib.sha256(out.tobytes()).hexdigest() == entry["decoded_sha256"], (
        f"v1 {scheme} container no longer decodes bit-exactly — the legacy "
        "single-stream decode path regressed"
    )


def test_v1_decode_matches_error_bound():
    """The v1 fixture field still reconstructs within its error bound."""
    field = np.load(os.path.join(V1_DIR, "reference_field.npy"))
    with open(os.path.join(V1_DIR, "none.secz"), "rb") as f:
        blob = f.read()
    out = SecureCompressor("none", 1e-4).decompress(blob)
    err = np.max(np.abs(out.astype(np.float64) - field.astype(np.float64)))
    assert err <= 1e-4
