"""Golden-digest tests pinning the wire formats.

A SECZ container written today must stay readable forever, so the byte
formats (frame sections, container framing, each scheme's transform)
are locked by SHA-256 digests of a fixed, fully-seeded compression.
If one of these fails, a format-affecting change happened: either fix
the regression, or — for a deliberate format evolution — bump the
relevant version constant, keep a decode path for the old version, and
re-record the digest.
"""

import hashlib

import numpy as np
import pytest

from repro.core.pipeline import SecureCompressor
from repro.datasets import generate
from repro.sz import SZCompressor

KEY = bytes(range(16))

#: Recorded against format versions: container v1, SZ frame v2.
GOLDEN = {
    "none": "bd6b51ff3a50dd6fdf9664c252ca291f234f194c37bd2fd2d880738f077467e2",
    "cmpr_encr": "054290084c52f673d53af5bf6a42567eca4b2cc7958496b894929babc1f4d15c",
    "encr_quant": "c9a0795340295e51d32318917ba5d28edead553ab27df4e882b655b50c57b70a",
    "encr_huffman": "9dfe55f61fac06c4b3a98895d0b5b8a06dc7adc0bc5dbcfff0f4697087068cec",
    "section:meta": "d9e5455248ea886e83f3905ff6df41a1ed7d4229560f03a3d88feeb7a6f6765a",
    "section:tree": "bf2b2cd9704e1ad88546bbe244680c8f61ae09811b37718d0db324496c1bb2b5",
    "section:codes": "6fad7bfe1771cda737f157da1f566e0764784de818fc57d01a79af76b822ab66",
    "section:unpred": "e90696b255cccdfbaf8df2c8f1b983c8b1eab7871581ba2fa3587a0785cd1993",
    "section:coeffs": "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
    "section:exact": "956ce4df0f4b576a2dee1a94dbac6a1097e4a06227e77f43d63b250ed90e60a3",
    "section:aux": "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
}


@pytest.fixture(scope="module")
def reference_data():
    return np.asarray(generate("q2", size="tiny"))


@pytest.mark.parametrize("scheme", ["none", "cmpr_encr", "encr_quant",
                                    "encr_huffman"])
def test_container_digest_stable(scheme, reference_data):
    sc = SecureCompressor(
        scheme, 1e-4, key=KEY, random_state=np.random.default_rng(42)
    )
    blob = sc.compress(reference_data).container
    assert hashlib.sha256(blob).hexdigest() == GOLDEN[scheme], (
        f"{scheme} container bytes changed — wire-format regression, or a "
        "deliberate format change that needs a version bump (see module "
        "docstring)"
    )


def test_frame_section_digests_stable(reference_data):
    frame = SZCompressor(1e-4).compress(reference_data)
    for name, section in frame.sections.items():
        digest = hashlib.sha256(section).hexdigest()
        assert digest == GOLDEN[f"section:{name}"], (
            f"frame section {name!r} bytes changed — see module docstring"
        )


def test_old_golden_container_still_decodes(reference_data):
    # Byte-stability implies decodability, but check the semantic
    # contract end-to-end anyway.
    sc = SecureCompressor(
        "encr_huffman", 1e-4, key=KEY,
        random_state=np.random.default_rng(42),
    )
    blob = sc.compress(reference_data).container
    out = sc.decompress(blob)
    err = np.max(np.abs(out.astype(np.float64)
                        - reference_data.astype(np.float64)))
    assert err <= 1e-4
