"""Keep the markdown honest: links must resolve, examples must run.

Two checks over README.md and every ``*.md`` under ``docs/`` (plus the
top-level DESIGN/EXPERIMENTS/ROADMAP files):

* every relative link target exists in the repo;
* every fenced ```` ```python ```` block executes.  Blocks that are
  deliberately illustrative opt out with the ``python no-run`` info
  string (same for ``json no-run`` etc., which are never executed).
"""

import os
import re
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_FILES = sorted(
    [
        p
        for p in (
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "ROADMAP.md",
            "PAPER.md",
            "CHANGES.md",
        )
        if os.path.exists(os.path.join(REPO, p))
    ]
    + [
        os.path.join("docs", name)
        for name in os.listdir(os.path.join(REPO, "docs"))
        if name.endswith(".md")
    ]
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```(.*)$")


def iter_links(text):
    """Relative link targets, with #fragments and ``<>`` stripped."""
    fenced = False
    for line in text.splitlines():
        if line.startswith("```"):
            fenced = not fenced
            continue
        if fenced:
            continue
        for target in _LINK.findall(line):
            target = target.strip("<>")
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            yield target.split("#", 1)[0]


def iter_python_blocks(text):
    """(info_string, source) for every fenced code block."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        m = _FENCE.match(lines[i])
        if m and lines[i].startswith("```") and lines[i] != "```":
            info = m.group(1).strip()
            body = []
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                body.append(lines[i])
                i += 1
            yield info, "\n".join(body)
        i += 1


@pytest.mark.parametrize("doc", DOC_FILES)
def test_relative_links_resolve(doc):
    with open(os.path.join(REPO, doc), encoding="utf-8") as fh:
        text = fh.read()
    base = os.path.dirname(os.path.join(REPO, doc))
    broken = [
        target
        for target in iter_links(text)
        if target and not os.path.exists(os.path.join(base, target))
    ]
    assert not broken, f"{doc}: broken relative links: {broken}"


def collect_runnable_blocks():
    found = []
    for doc in DOC_FILES:
        with open(os.path.join(REPO, doc), encoding="utf-8") as fh:
            text = fh.read()
        for idx, (info, source) in enumerate(iter_python_blocks(text)):
            if info.split() and info.split()[0] == "python" and (
                "no-run" not in info
            ):
                found.append(pytest.param(doc, source, id=f"{doc}#{idx}"))
    return found


@pytest.mark.parametrize("doc,source", collect_runnable_blocks())
def test_fenced_python_blocks_execute(doc, source, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.run(
        [sys.executable, "-c", source],
        capture_output=True,
        text=True,
        env=env,
        cwd=tmp_path,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{doc}: fenced python block failed:\n{proc.stderr}"
    )


def test_readme_has_a_runnable_block():
    """The opt-out must not quietly swallow everything."""
    assert any(doc == "README.md" for doc, _ in
               (p.values for p in collect_runnable_blocks()))


# ----------------------------------------------------------------------
# CLI flag drift: every documented `secz` flag must exist in the parser
# ----------------------------------------------------------------------

_SECZ_INVOCATION = re.compile(r"^\s*secz\s+([a-z-]+)\s+(.*)$")
_FLAG = re.compile(r"(--[a-z][a-z0-9-]*)")


def _collect_parser_flags(prefix, parser, flags):
    """Walk ``parser`` (and any nested subparsers, e.g. ``secz archive
    add``) into ``{command words: set of option strings}``."""
    if prefix:
        flags[prefix] = {
            opt for action in parser._actions
            for opt in action.option_strings
        }
    for action in parser._actions:
        if action.__class__.__name__ == "_SubParsersAction":
            for name, sub in action.choices.items():
                _collect_parser_flags(
                    f"{prefix} {name}".strip(), sub, flags
                )


def _parser_flags():
    """{subcommand: set of option strings} from the real parser."""
    sys.path.insert(0, os.path.join(REPO, "src"))
    try:
        from repro.cli import build_parser
    finally:
        sys.path.pop(0)
    flags = {}
    _collect_parser_flags("", build_parser(), flags)
    return flags


def collect_documented_invocations():
    """(doc, subcommand, flags) for every ``secz`` call in the docs and
    the ``secz --help`` epilog, scanning fenced blocks and continuation
    lines (trailing ``\\``)."""
    sources = list(DOC_FILES) + [os.path.join("src", "repro", "cli.py")]
    found = []
    for doc in sources:
        with open(os.path.join(REPO, doc), encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        i = 0
        while i < len(lines):
            m = _SECZ_INVOCATION.match(lines[i])
            i += 1
            if m is None:
                continue
            command = m.group(1)
            rest = m.group(2)
            while rest.rstrip().endswith("\\") and i < len(lines):
                rest = rest.rstrip()[:-1] + " " + lines[i].strip()
                i += 1
            # Strip inline comments so `# --flag in prose` is not parsed.
            rest = rest.split("#", 1)[0]
            # Nested subcommands ("secz archive add ...") document the
            # verb as the first bare word after the command; whether it
            # really is a verb is resolved against the parser later.
            words = rest.split()
            subword = (
                words[0]
                if words and re.fullmatch(r"[a-z][a-z-]*", words[0])
                else None
            )
            found.append((doc, command, subword,
                          frozenset(_FLAG.findall(rest))))
    return found


def test_documented_secz_flags_exist_in_parser():
    parser_flags = _parser_flags()
    problems = []
    for doc, command, subword, flags in collect_documented_invocations():
        if subword and f"{command} {subword}" in parser_flags:
            command = f"{command} {subword}"
        if command not in parser_flags:
            problems.append(f"{doc}: unknown subcommand 'secz {command}'")
            continue
        for flag in sorted(flags - parser_flags[command]):
            problems.append(
                f"{doc}: 'secz {command}' has no flag {flag}"
            )
    assert not problems, "documented CLI drifted from the parser:\n" + \
        "\n".join(problems)


def test_docs_actually_document_secz_invocations():
    """The drift check must not pass vacuously."""
    invocations = collect_documented_invocations()
    assert len(invocations) >= 5
    assert any(flags for _, _, _, flags in invocations)


def test_flag_audit_sees_nested_archive_verbs():
    """The walker must cover ``secz archive <verb>`` subparsers."""
    parser_flags = _parser_flags()
    assert "archive add" in parser_flags
    assert "--codec" in parser_flags["archive add"]
    assert "--deep" in parser_flags["archive verify"]
