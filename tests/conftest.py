"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

KEY = bytes(range(16))


@pytest.fixture(scope="session")
def key() -> bytes:
    """A fixed 16-byte AES key."""
    return KEY


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session-wide seeded generator for test data."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(scope="session")
def smooth_field() -> np.ndarray:
    """A smooth, highly-predictable 3-D float32 field."""
    x = np.linspace(0.0, 4.0, 24)
    gx, gy, gz = np.meshgrid(x, x, x, indexing="ij")
    return (np.sin(gx) * np.cos(gy) + 0.1 * gz).astype(np.float32)


@pytest.fixture(scope="session")
def noisy_field() -> np.ndarray:
    """A hard-to-compress 3-D float32 field (random mantissas)."""
    gen = np.random.default_rng(1234)
    return np.exp(gen.standard_normal((20, 20, 20))).astype(np.float32)


@pytest.fixture(scope="session")
def sparse_field() -> np.ndarray:
    """A mostly-zero field (cloud/ice character)."""
    gen = np.random.default_rng(99)
    field = np.zeros((16, 24, 24), dtype=np.float32)
    mask = gen.random(field.shape) > 0.97
    field[mask] = gen.random(int(mask.sum()), dtype=np.float32) * 1e-3
    return field
