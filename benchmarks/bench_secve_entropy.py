"""Sec. V-E entropy measurements.

The paper explains the time/ratio behaviour of the schemes through the
Shannon entropy of what reaches the zlib stage: "The entropy value of
the dataset after applying Encr-Quant is extremely high, approaching
the theoretical maximum value of 8", while "In comparison to the
original SZ, Encr-Huffman reduces entropy by 0.01 on average".

We measure the entropy of each scheme's *zlib input* (the quantity the
paper's argument is actually about) on the six evaluation datasets.
"""

import numpy as np

from repro.bench.harness import KEY, dataset_cache
from repro.bench.tables import format_grid
from repro.core.container import pack_sections
from repro.core.schemes import SCHEMES
from repro.core.timing import StageTimes
from repro.crypto.aes import AES128
from repro.security.entropy import shannon_entropy
from repro.sz import SZCompressor
from repro.sz.lossless import compress as zlib_compress

from conftest import BENCH_SIZE, TABLE_DATASETS, emit

EB = 1e-4


def _zlib_input_entropy(frame, scheme_name, cipher):
    """Entropy (bits/byte) of the byte stream each scheme hands zlib."""
    iv = bytes(16)
    sections = frame.sections
    if scheme_name == "none":
        return shannon_entropy(pack_sections(sections))
    if scheme_name == "encr_quant":
        quant = pack_sections(
            {k: sections[k] for k in ("meta", "tree", "codes")}
        )
        ct = cipher.encrypt_cbc(quant, iv=iv).ciphertext
        rest = pack_sections(
            {k: sections[k] for k in ("unpred", "coeffs", "exact")}
        )
        return shannon_entropy(ct + rest)
    if scheme_name == "encr_huffman":
        tree_z = zlib_compress(sections["tree"])
        ct = cipher.encrypt_cbc(tree_z, iv=iv).ciphertext
        rest = pack_sections(
            {k: sections[k]
             for k in ("meta", "codes", "unpred", "coeffs", "exact")}
        )
        return shannon_entropy(ct + rest)
    raise ValueError(scheme_name)


def test_secve_entropy(benchmark):
    cipher = AES128(KEY)
    schemes = ("none", "encr_quant", "encr_huffman")
    rows = []
    values = {}
    for name in TABLE_DATASETS:
        data = np.asarray(dataset_cache(name, size=BENCH_SIZE))
        frame = SZCompressor(EB).compress(data)
        row = [_zlib_input_entropy(frame, s, cipher) for s in schemes]
        rows.append(row)
        values[name] = dict(zip(schemes, row))
    emit(
        "secve_entropy",
        format_grid(
            "Sec. V-E: Shannon entropy (bits/byte) of each scheme's "
            f"zlib input @ eb={EB:g} (size={BENCH_SIZE})",
            list(TABLE_DATASETS), list(schemes), rows,
        ),
    )

    for name in TABLE_DATASETS:
        v = values[name]
        # Encr-Quant's zlib input approaches the 8-bit maximum...
        assert v["encr_quant"] > 7.2, name
        # ...and always sits at or above the plain-SZ stream's entropy.
        assert v["encr_quant"] >= v["none"] - 0.01, name
        # Encr-Huffman moves the entropy only marginally (paper: ~0.01
        # average delta; allow generous slack at tiny scale where the
        # tree is a bigger fraction).
        assert abs(v["encr_huffman"] - v["none"]) < 0.8, name

    data = np.asarray(dataset_cache("q2", size=BENCH_SIZE))
    frame = SZCompressor(EB).compress(data)
    benchmark.pedantic(
        lambda: _zlib_input_entropy(frame, "encr_quant", cipher),
        rounds=3, iterations=1,
    )
