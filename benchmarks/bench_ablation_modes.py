"""Ablation (ours) — CBC vs CTR inside the schemes.

Algorithm 1 hard-codes CBC chaining.  CTR keystreams are batchable
(every block independent), so this ablation quantifies what the CBC
choice costs on the encryption-heavy scheme (Cmpr-Encr) and verifies it
is irrelevant for Encr-Huffman (tiny plaintext either way).
"""

from repro.bench.harness import dataset_cache, measure_scheme
from repro.bench.tables import format_grid

from conftest import BENCH_SIZE, emit

EB = 1e-5
DATASET = "t"


def test_ablation_cipher_modes(benchmark):
    data = dataset_cache(DATASET, size=BENCH_SIZE)
    rows = []
    labels = []
    results = {}
    for scheme in ("cmpr_encr", "encr_huffman"):
        for mode in ("cbc", "ctr"):
            m = measure_scheme(data, scheme, EB, repeats=3, cipher_mode=mode)
            labels.append(f"{scheme}/{mode}")
            rows.append([m.t_compress * 1e3, m.t_decompress * 1e3, m.cr])
            results[(scheme, mode)] = m
    emit(
        "ablation_modes",
        format_grid(
            f"Ablation: CBC vs CTR on {DATASET} @ eb={EB:g} "
            f"(size={BENCH_SIZE})",
            labels,
            ["t_comp (ms)", "t_decomp (ms)", "CR"],
            rows,
            corner="Scheme/mode",
        ),
    )

    # The mode must not change the compression ratio materially
    # (CTR even avoids padding).
    for scheme in ("cmpr_encr", "encr_huffman"):
        cbc_cr = results[(scheme, "cbc")].cr
        ctr_cr = results[(scheme, "ctr")].cr
        assert abs(cbc_cr - ctr_cr) / cbc_cr < 0.01
    # CTR (batched) must not be slower than CBC (sequential) on the
    # encryption-heavy scheme, beyond timing noise.
    assert (
        results[("cmpr_encr", "ctr")].t_compress
        <= results[("cmpr_encr", "cbc")].t_compress * 1.10
    )

    benchmark.pedantic(
        lambda: measure_scheme(data, "cmpr_encr", EB, repeats=1,
                               cipher_mode="ctr"),
        rounds=3, iterations=1,
    )
