"""Quick-bench: Huffman encode + decode throughput per lane count.

Standalone (no pytest plugins): times the legacy single-stream scalar
decoder against the vectorized multi-lane kernel, and the reference
bit-plane packer (``pack_codes_ref``) against the word-packed encode
kernel, on a >= 4 MB float32 field.  Writes ``BENCH_huffman.json`` at
the repo root (or ``REPRO_BENCH_OUT``).  CI runs this as a smoke check;
the acceptance bars are a >= 5x decode speedup at K = 16 over the
single-stream decoder and a >= 2x `huffman_encode` throughput with
~8x lower peak allocation over the reference packer.

Usage::

    PYTHONPATH=src python benchmarks/bench_huffman_lanes.py

Environment knobs: ``REPRO_BENCH_REPEATS`` (default 3, best-of),
``REPRO_BENCH_DATASET`` (default ``nyx``), ``REPRO_BENCH_DIMS``
(comma-separated, default ``128,128,128``; setting it waives the 4 MB
floor so CI can smoke-test at tiny sizes) and ``REPRO_BENCH_OUT``
(output path override).
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc

import numpy as np

from repro.core import trace
from repro.datasets import generate
from repro.sz import fastdecode, huffman
from repro.sz.bitstream import concat_streams, pack_codes, pack_codes_ref
from repro.sz.compressor import SZCompressor

LANE_COUNTS = (1, 4, 16)
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
DATASET = os.environ.get("REPRO_BENCH_DATASET", "nyx")
DIMS = tuple(
    int(d) for d in os.environ.get("REPRO_BENCH_DIMS", "128,128,128").split(",")
)
OUT_PATH = os.environ.get(
    "REPRO_BENCH_OUT",
    os.path.join(os.path.dirname(__file__), "..", "BENCH_huffman.json"),
)


def _best_seconds(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _peak_mb(fn) -> float:
    """Peak tracemalloc allocation of one ``fn()`` call, in MB."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1e6


def main() -> dict:
    # 128^3 float32 = 8 MB: comfortably past the 4 MB acceptance floor.
    field = np.asarray(generate(DATASET, dims=DIMS), dtype=np.float32)
    field_mb = field.nbytes / 1e6
    if "REPRO_BENCH_DIMS" not in os.environ:
        assert field.nbytes >= 4 * 1024 * 1024, "bench field must be >= 4 MB"

    # Recover the real quantization-code stream the codec faces.
    comp = SZCompressor(1e-4)
    frame = comp.compress(field)
    info = comp.parse_meta(frame.sections["meta"])
    n = int(np.prod(info["shape"]))
    if info["version"] >= 3:
        code, table = huffman.deserialize_lane_tree(frame.sections["tree"], n)
        flat_codes = fastdecode.decode_lanes(
            frame.sections["codes"], code, table, n
        )
    else:
        code = huffman.deserialize_tree(frame.sections["tree"])
        flat_codes = huffman.decode(
            huffman.PackedBits(frame.sections["codes"], info["n_bits"]), code, n
        )

    result: dict = {
        "dataset": DATASET,
        "field_mb": round(field_mb, 3),
        "n_symbols": n,
        "repeats": REPEATS,
        "tree_build_ms": {},
        "codec_cache": {},
        "encode_mb_per_s": {},
        "encode_peak_alloc_mb": {},
        "decode_mb_per_s": {},
        "decode_msym_per_s": {},
    }

    # ------------------------------------------------------------------
    # Tree build: the retired heapq construction vs the two-queue O(n)
    # build, on the frame's real frequency table (bit-identical output
    # is pinned by tests/sz/test_huffman_diff.py).
    # ------------------------------------------------------------------
    symbols, counts = np.unique(flat_codes, return_counts=True)
    result["alphabet_size"] = int(symbols.size)
    result["max_code_len"] = int(code.lengths.max())
    secs = _best_seconds(lambda: huffman._huffman_lengths_ref(counts))
    result["tree_build_ms"]["heapq_ref"] = round(secs * 1e3, 3)
    secs = _best_seconds(lambda: huffman._huffman_lengths(counts))
    result["tree_build_ms"]["two_queue"] = round(secs * 1e3, 3)
    result["tree_build_ms"]["speedup"] = round(
        result["tree_build_ms"]["heapq_ref"]
        / max(result["tree_build_ms"]["two_queue"], 1e-9),
        2,
    )

    # ------------------------------------------------------------------
    # Codec cache: cold-vs-warm full compress, plus the frame-drift
    # guard CI relies on — a warm cache must not change a single frame
    # byte.
    # ------------------------------------------------------------------
    huffman.codec_cache_clear()
    before = trace.counters_snapshot()
    cold = comp.compress(field)
    warm = comp.compress(field)
    after = trace.counters_snapshot()
    hits = after.get("huffman.codec_cache_hits", 0) - before.get(
        "huffman.codec_cache_hits", 0
    )
    misses = after.get("huffman.codec_cache_misses", 0) - before.get(
        "huffman.codec_cache_misses", 0
    )
    assert cold.sections == warm.sections, (
        "frame drift: warm codec cache changed the emitted bytes"
    )
    assert cold.sections == frame.sections, (
        "frame drift: repeat compress changed the emitted bytes"
    )
    result["codec_cache"]["hits"] = int(hits)
    result["codec_cache"]["misses"] = int(misses)
    result["codec_cache"]["hit_rate"] = round(
        hits / max(hits + misses, 1), 4
    )

    # ------------------------------------------------------------------
    # Encode: reference bit-plane packer vs the word-packed kernel, on
    # the exact codeword/length tables the compressor emits.
    # ------------------------------------------------------------------
    idx = np.searchsorted(code.symbols, flat_codes)
    codewords = code.codewords[idx]
    lengths = code.lengths[idx].astype(np.int64)
    assert pack_codes(codewords, lengths).data == pack_codes_ref(
        codewords, lengths
    ).data

    secs = _best_seconds(lambda: pack_codes_ref(codewords, lengths))
    result["encode_mb_per_s"]["pack_ref"] = round(field_mb / secs, 2)
    secs = _best_seconds(lambda: pack_codes(codewords, lengths))
    result["encode_mb_per_s"]["pack_word"] = round(field_mb / secs, 2)
    result["encode_peak_alloc_mb"]["pack_ref"] = round(
        _peak_mb(lambda: pack_codes_ref(codewords, lengths)), 2
    )
    result["encode_peak_alloc_mb"]["pack_word"] = round(
        _peak_mb(lambda: pack_codes(codewords, lengths)), 2
    )

    # Full encode_lanes path (lookup + per-lane packing + anchors).
    packed = huffman.encode(flat_codes, code)
    for k in LANE_COUNTS:
        _, stride = huffman.choose_lane_params(n, packed.n_bits)
        secs = _best_seconds(
            lambda: huffman.encode_lanes(flat_codes, code, k, stride)
        )
        result["encode_mb_per_s"][f"lanes_{k}"] = round(field_mb / secs, 2)

    result["encode_speedup_word_vs_ref"] = round(
        result["encode_mb_per_s"]["pack_word"]
        / result["encode_mb_per_s"]["pack_ref"],
        2,
    )
    result["encode_peak_ratio_ref_vs_word"] = round(
        result["encode_peak_alloc_mb"]["pack_ref"]
        / max(result["encode_peak_alloc_mb"]["pack_word"], 1e-9),
        2,
    )

    # ------------------------------------------------------------------
    # Decode: the seed's single-stream scalar decoder (unchanged code
    # path, used today for v2 frames) vs the lane kernel.
    # ------------------------------------------------------------------
    secs = _best_seconds(lambda: huffman.decode(packed, code, n))
    assert np.array_equal(huffman.decode(packed, code, n), flat_codes)
    result["decode_mb_per_s"]["single_stream"] = round(field_mb / secs, 2)
    result["decode_msym_per_s"]["single_stream"] = round(n / secs / 1e6, 2)

    for k in LANE_COUNTS:
        _, stride = huffman.choose_lane_params(n, packed.n_bits)
        enc = huffman.encode_lanes(flat_codes, code, k, stride)
        codes_bytes = concat_streams(list(enc.lanes))
        table = enc.table
        out = fastdecode.decode_lanes(codes_bytes, code, table, n)
        assert np.array_equal(out, flat_codes)
        secs = _best_seconds(
            lambda: fastdecode.decode_lanes(codes_bytes, code, table, n)
        )
        result["decode_mb_per_s"][f"lanes_{k}"] = round(field_mb / secs, 2)
        result["decode_msym_per_s"][f"lanes_{k}"] = round(n / secs / 1e6, 2)

    result["speedup_k16_vs_single"] = round(
        result["decode_mb_per_s"]["lanes_16"]
        / result["decode_mb_per_s"]["single_stream"],
        2,
    )

    # ------------------------------------------------------------------
    # Length-limited (miss-free) path: cap code depth at
    # DEPTH_LIMIT_BITS so the full-coverage 64-bit kernel decodes with
    # zero primary-table misses, and measure the rate cost alongside.
    # ------------------------------------------------------------------
    if symbols.size <= (1 << huffman.DEPTH_LIMIT_BITS):
        dl_code = huffman.build_code(
            symbols, counts, max_len=huffman.DEPTH_LIMIT_BITS
        )
        result["max_code_len_limited"] = int(dl_code.lengths.max())
        _, stride = huffman.choose_lane_params(n, packed.n_bits)
        enc = huffman.encode_lanes(flat_codes, dl_code, 16, stride)
        dl_bytes = concat_streams(list(enc.lanes))
        dl_table = enc.table
        assert np.array_equal(
            fastdecode.decode_lanes(dl_bytes, dl_code, dl_table, n),
            flat_codes,
        )
        result["limited_rate_overhead_pct"] = round(
            (enc.n_bits / packed.n_bits - 1) * 100, 3
        )
        secs = _best_seconds(
            lambda: huffman.encode_lanes(flat_codes, dl_code, 16, stride)
        )
        result["encode_mb_per_s"]["lanes_16_limited"] = round(
            field_mb / secs, 2
        )
        secs = _best_seconds(
            lambda: fastdecode.decode_lanes(dl_bytes, dl_code, dl_table, n)
        )
        result["decode_mb_per_s"]["lanes_16_limited"] = round(
            field_mb / secs, 2
        )
        result["decode_msym_per_s"]["lanes_16_limited"] = round(
            n / secs / 1e6, 2
        )
    with open(os.path.abspath(OUT_PATH), "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
    return result


if __name__ == "__main__":
    main()
