"""Quick-bench: Huffman decode throughput per lane count.

Standalone (no pytest plugins): times the legacy single-stream scalar
decoder against the vectorized multi-lane kernel on a >= 4 MB float32
field and writes ``BENCH_huffman.json`` at the repo root.  CI runs this
as a smoke check; the acceptance bar for the lane work is a >= 5x
decode speedup at K = 16 over the single-stream decoder.

Usage::

    PYTHONPATH=src python benchmarks/bench_huffman_lanes.py

Environment knobs: ``REPRO_BENCH_REPEATS`` (default 3, best-of) and
``REPRO_BENCH_DATASET`` (default ``nyx``).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.datasets import generate
from repro.sz import fastdecode, huffman
from repro.sz.bitstream import concat_streams
from repro.sz.compressor import SZCompressor

LANE_COUNTS = (1, 4, 16)
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
DATASET = os.environ.get("REPRO_BENCH_DATASET", "nyx")
OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_huffman.json")


def _best_seconds(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> dict:
    # 128^3 float32 = 8 MB: comfortably past the 4 MB acceptance floor.
    field = np.asarray(generate(DATASET, dims=(128, 128, 128)), dtype=np.float32)
    field_mb = field.nbytes / 1e6
    assert field.nbytes >= 4 * 1024 * 1024, "bench field must be >= 4 MB"

    # Recover the real quantization-code stream the decoder faces.
    comp = SZCompressor(1e-4)
    frame = comp.compress(field)
    info = comp.parse_meta(frame.sections["meta"])
    n = int(np.prod(info["shape"]))
    if info["version"] >= 3:
        code, table = huffman.deserialize_lane_tree(frame.sections["tree"], n)
        flat_codes = fastdecode.decode_lanes(
            frame.sections["codes"], code, table, n
        )
    else:
        code = huffman.deserialize_tree(frame.sections["tree"])
        flat_codes = huffman.decode(
            huffman.PackedBits(frame.sections["codes"], info["n_bits"]), code, n
        )

    result: dict = {
        "dataset": DATASET,
        "field_mb": round(field_mb, 3),
        "n_symbols": n,
        "repeats": REPEATS,
        "decode_mb_per_s": {},
        "decode_msym_per_s": {},
    }

    # Baseline: the seed's single-stream scalar decoder (unchanged code
    # path, used today for v2 frames).
    packed = huffman.encode(flat_codes, code)
    secs = _best_seconds(lambda: huffman.decode(packed, code, n))
    assert np.array_equal(huffman.decode(packed, code, n), flat_codes)
    result["decode_mb_per_s"]["single_stream"] = round(field_mb / secs, 2)
    result["decode_msym_per_s"]["single_stream"] = round(n / secs / 1e6, 2)

    for k in LANE_COUNTS:
        _, stride = huffman.choose_lane_params(n, packed.n_bits)
        enc = huffman.encode_lanes(flat_codes, code, k, stride)
        codes_bytes = concat_streams(list(enc.lanes))
        table = enc.table
        out = fastdecode.decode_lanes(codes_bytes, code, table, n)
        assert np.array_equal(out, flat_codes)
        secs = _best_seconds(
            lambda: fastdecode.decode_lanes(codes_bytes, code, table, n)
        )
        result["decode_mb_per_s"][f"lanes_{k}"] = round(field_mb / secs, 2)
        result["decode_msym_per_s"][f"lanes_{k}"] = round(n / secs / 1e6, 2)

    result["speedup_k16_vs_single"] = round(
        result["decode_mb_per_s"]["lanes_16"]
        / result["decode_mb_per_s"]["single_stream"],
        2,
    )
    with open(os.path.abspath(OUT_PATH), "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
    return result


if __name__ == "__main__":
    main()
