"""Extension — decompression-side time overhead per scheme.

The paper's Tables III-V cover compression; Sec. V-D notes that
decompression bandwidth exceeds compression ("mathematical computations
required in the compression process ... are not present in
decompression").  This extension produces the decompression analog of
the overhead tables using the same paired, modeled-AES methodology:
scheme unprotect + SZ decode versus plain unprotect + SZ decode on the
*same* container contents.
"""

import numpy as np

from repro.bench.harness import (
    EBS,
    KEY,
    aes_calibration,
    dataset_cache,
    model_aes_mb_s,
)
from repro.bench.tables import format_grid
from repro.core.schemes import get_scheme
from repro.core.timing import StageTimes
from repro.crypto.aes import AES128
from repro.sz.compressor import SZCompressor
from repro.sz.lossless import DEFAULT_LEVEL

from conftest import BENCH_REPEATS, BENCH_SIZE, TABLE_DATASETS, emit


def _paired_decompress_overhead(data, scheme_name, eb, repeats):
    """Median of 100 * t_scheme_decode / t_plain_decode (paired)."""
    scheme = get_scheme(scheme_name)
    base = get_scheme("none")
    cipher = AES128(KEY)
    iv = bytes(16)
    _, dec_rate = aes_calibration()
    sz = SZCompressor(eb)
    frame = sz.compress(np.asarray(data))
    protected = scheme.protect(
        dict(frame.sections), cipher, iv, "cbc", DEFAULT_LEVEL, StageTimes()
    )
    plain = base.protect(
        dict(frame.sections), None, iv, "cbc", DEFAULT_LEVEL, StageTimes()
    )
    ratios = []
    for _ in range(repeats):
        t_s = StageTimes()
        sections = scheme.unprotect(protected, cipher, iv, "cbc", t_s)
        decode: dict[str, float] = {}
        from repro.sz.compressor import SZFrame
        sz.decompress(
            SZFrame(sections=sections, stats=frame.stats), decode
        )
        t_b = StageTimes()
        base_sections = base.unprotect(plain, None, iv, "cbc", t_b)
        decode_b: dict[str, float] = {}
        sz.decompress(
            SZFrame(sections=base_sections, stats=frame.stats), decode_b
        )
        shared = sum(decode_b.values())  # decode work is identical
        measured_dec = t_s.seconds.get("decrypt", 0.0)
        modeled_dec = measured_dec * dec_rate / model_aes_mb_s()
        t_scheme = shared + t_s.seconds.get("lossless", 0.0) + modeled_dec
        t_base = shared + t_b.seconds.get("lossless", 0.0)
        ratios.append(100.0 * t_scheme / t_base)
    return float(np.median(ratios))


def test_decompression_overhead(eb_labels, benchmark):
    tables = []
    means = {}
    for scheme in ("cmpr_encr", "encr_quant", "encr_huffman"):
        rows = []
        for name in TABLE_DATASETS:
            data = dataset_cache(name, size=BENCH_SIZE)
            rows.append([
                _paired_decompress_overhead(
                    data, scheme, eb, max(BENCH_REPEATS, 3)
                )
                for eb in EBS
            ])
        tables.append(
            format_grid(
                f"Decompression time overhead for {scheme} "
                f"(%, paired, modeled hardware AES, size={BENCH_SIZE})",
                list(TABLE_DATASETS), eb_labels, rows,
            )
        )
        means[scheme] = sum(v for row in rows for v in row) / (
            len(TABLE_DATASETS) * len(EBS)
        )
    emit("decompression_overhead", "\n\n".join(tables))

    # Decryption is batched and the decode stage dominates, so every
    # scheme stays close to the plain-SZ baseline.
    for scheme, mean in means.items():
        assert 95.0 < mean < 108.0, scheme

    data = dataset_cache("t", size=BENCH_SIZE)
    benchmark.pedantic(
        lambda: _paired_decompress_overhead(data, "cmpr_encr", 1e-4, 1),
        rounds=3, iterations=1,
    )
