"""Fig. 7 — per-stage time breakdown for the bandwidth datasets.

Stacked-bar data: for each (dataset, scheme), the share of compression
time spent in prediction+quantization, Huffman coding, encryption and
the lossless stage.  The paper uses this to show where Encr-Quant's
time goes (encryption of the codeword stream + a slower zlib) and how
little Encr-Huffman's encryption slice is.
"""

from repro.bench.harness import (
    EBS, SCHEME_LABELS, dataset_cache, measure_scheme, trace_cell,
)
from repro.bench.tables import format_grid

from conftest import ALL_SCHEMES, BANDWIDTH_DATASETS, BENCH_SIZE, emit, emit_trace

#: Stage grouping used for the stacked bars.
GROUPS = (
    ("predict+quantize", ("predict", "quantize")),
    ("huffman", ("huffman_build", "huffman_encode")),
    ("side channels", ("side_channels",)),
    ("encrypt", ("encrypt",)),
    ("lossless", ("lossless",)),
)

FIG7_EB = 1e-4


def test_fig7_time_breakdown(grid, benchmark):
    blocks = []
    shares = {}
    for name in BANDWIDTH_DATASETS:
        rows = []
        labels = []
        for scheme in ALL_SCHEMES:
            m = grid[(name, scheme, FIG7_EB)]
            seconds = dict(m.compress_times.seconds)
            # Rescale the encrypt stage to the hardware-AES model so the
            # stacked shares match the paper's regime (see harness docs).
            if "encrypt" in seconds:
                seconds["encrypt"] = m.modeled_encrypt_seconds()
            total = sum(seconds.values()) or 1.0
            row = []
            for _, stages in GROUPS:
                row.append(
                    100.0
                    * sum(seconds.get(s, 0.0) for s in stages)
                    / total
                )
            rows.append(row)
            labels.append(SCHEME_LABELS[scheme])
            shares[(name, scheme)] = dict(
                zip([g for g, _ in GROUPS], row)
            )
        blocks.append(
            format_grid(
                f"Fig. 7 — {name} @ eb={FIG7_EB:g}: compression time "
                f"breakdown (% of total, modeled AES, size={BENCH_SIZE})",
                labels, [g for g, _ in GROUPS], rows,
                corner="Method", precision=1,
            )
        )
    emit("fig7_time_breakdown", "\n\n".join(blocks))

    # The same breakdown as a trace record: one traced cell per scheme,
    # emitted next to the table so the figure's numbers can be drilled
    # into span-by-span.  The stage spans and the flat stage map come
    # from one code path, so every stage key the table reads must
    # appear as a stage span under the compress root.
    for scheme in ALL_SCHEMES:
        doc = trace_cell(
            dataset_cache("t", size=BENCH_SIZE), scheme, FIG7_EB
        )
        emit_trace(f"fig7_{scheme}", doc)
        span_names = set()

        def collect(span):
            span_names.add(span["name"])
            for child in span["children"]:
                collect(child)

        for root in doc["roots"]:
            collect(root)
        m = grid[("t", scheme, FIG7_EB)]
        assert set(m.compress_times.seconds) <= span_names, (
            f"{scheme}: stage keys missing from the trace: "
            f"{set(m.compress_times.seconds) - span_names}"
        )

    for name in BANDWIDTH_DATASETS:
        # Plain SZ spends nothing on encryption...
        assert shares[(name, "none")]["encrypt"] == 0.0
        # ...Encr-Huffman's encryption slice is small...
        assert shares[(name, "encr_huffman")]["encrypt"] < 20.0
        # ...and never larger than Cmpr-Encr's full-stream pass.
        assert (
            shares[(name, "encr_huffman")]["encrypt"]
            <= shares[(name, "cmpr_encr")]["encrypt"] + 1.0
        )

    data = dataset_cache("cloudf48", size=BENCH_SIZE)
    benchmark.pedantic(
        lambda: measure_scheme(data, "encr_quant", FIG7_EB, repeats=1),
        rounds=3, iterations=1,
    )
