"""Table III — Cmpr-Encr compression-time overhead (% of plain SZ).

Paper: always above 100% (the appended encryption pass is pure added
work); 100.016%-105.9% across the grid, largest for hard-to-compress
data at tight bounds (bigger streams to encrypt), smallest where the
CR is huge (QI at 1e-3: 100.016%).

Methodology here: paired, hardware-AES-modeled timing — see
``repro.bench.harness.measure_overhead_paired`` and EXPERIMENTS.md.
"""

import numpy as np

from repro.bench.harness import EBS, dataset_cache, measure_overhead_paired
from repro.bench.tables import format_grid

from conftest import BENCH_REPEATS, BENCH_SIZE, TABLE_DATASETS, emit


def test_table3_overhead(eb_labels, benchmark):
    rows = []
    for name in TABLE_DATASETS:
        data = np.asarray(dataset_cache(name, size=BENCH_SIZE))
        rows.append([
            measure_overhead_paired(
                data, "cmpr_encr", eb, repeats=max(BENCH_REPEATS, 3)
            )
            for eb in EBS
        ])
    emit(
        "table3_overhead_cmpr_encr",
        format_grid(
            "Table III: time overhead for Cmpr-Encr when compressing "
            f"(%, paired, modeled hardware AES, size={BENCH_SIZE})",
            list(TABLE_DATASETS), eb_labels, rows,
        ),
    )
    by_name = dict(zip(TABLE_DATASETS, rows))
    flat = [v for row in rows for v in row]
    # Pure added work: the overhead sits above 100% across the grid.
    assert sum(flat) / len(flat) > 100.0
    assert min(flat) > 98.5  # paired noise floor
    assert max(flat) < 115.0  # encryption is an add-on, not a blow-up
    # Hard-to-compress data at tight bounds pays the most (paper: Nyx
    # ~105.9% at 1e-7); the ultra-compressible QI pays the least.
    assert by_name["nyx"][0] > by_name["qi"][-1]

    data = dataset_cache("nyx", size=BENCH_SIZE)
    benchmark.pedantic(
        lambda: measure_overhead_paired(
            np.asarray(data), "cmpr_encr", 1e-7, repeats=1
        ),
        rounds=3, iterations=1,
    )
