"""Shared infrastructure for the table/figure benchmarks.

Each ``bench_*.py`` module reproduces one artifact of the paper's
evaluation (see DESIGN.md §4).  The expensive dataset × error-bound ×
scheme sweep is computed once per session here and shared, so the whole
directory runs in minutes; per-module pytest-benchmark tests then time
one representative kernel each.

Every module *emits* its paper-shaped table through :func:`emit`, which
writes ``benchmarks/results/<name>.txt`` and prints it (visible with
``pytest -s`` and recorded by the results files either way).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.harness import EBS, sweep
from repro.core import trace

#: All six datasets of Tables II-V (wf48 appears in Table I but not in
#: the evaluation tables; Fig. 2's four datasets are a subset).
TABLE_DATASETS = ("cloudf48", "nyx", "q2", "height", "qi", "t")

#: The three bandwidth datasets of Fig. 6 (Sec. V-D's selection).
BANDWIDTH_DATASETS = ("t", "cloudf48", "nyx")

ALL_SCHEMES = ("none", "cmpr_encr", "encr_quant", "encr_huffman")

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Scale knobs: the full grid at "tiny" finishes quickly; bump to
#: "small"/"medium" (env var) for closer-to-paper statistics.
BENCH_SIZE = os.environ.get("REPRO_BENCH_SIZE", "tiny")
BENCH_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))


def emit(name: str, text: str) -> None:
    """Record a result table to disk and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def emit_trace(name: str, doc: dict) -> str:
    """Record a ``repro-trace/1`` document next to the result tables.

    Validates against the documented schema first, so a benchmark can
    never publish a malformed trace; returns the path written.
    """
    trace.validate(doc)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.trace.json")
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
    print(f"[trace written to {path}]")
    return path


@pytest.fixture(scope="session")
def grid():
    """The full (dataset, scheme, eb) measurement grid, computed once."""
    return sweep(
        TABLE_DATASETS,
        ALL_SCHEMES,
        EBS,
        size=BENCH_SIZE,
        repeats=BENCH_REPEATS,
    )


@pytest.fixture(scope="session")
def eb_labels():
    return [f"{eb:.0e}" for eb in EBS]
