"""Ablation (ours) — encrypt-before-zlib vs encrypt-after-zlib for the
quantization array.

The paper's Encr-Quant deliberately encrypts *before* the lossless
stage (Fig. 1's orange path) and attributes its CR collapse to the
entropy the ciphertext injects into zlib's input (Sec. V-E).  This
ablation isolates that design decision: the same quantization-array
bytes, encrypted either side of zlib, on an easy and a hard dataset.
Encrypting after (which is Cmpr-Encr's placement) recovers the ratio —
confirming the placement, not AES itself, is what costs Encr-Quant its
CR.
"""

import numpy as np

from repro.bench.harness import KEY, dataset_cache
from repro.bench.tables import format_grid
from repro.core.container import pack_sections
from repro.crypto.aes import AES128
from repro.security.entropy import shannon_entropy
from repro.sz import SZCompressor
from repro.sz.lossless import compress as zlib_compress

from conftest import BENCH_SIZE, emit

EB = 1e-4


def _variants(name):
    data = np.asarray(dataset_cache(name, size=BENCH_SIZE))
    frame = SZCompressor(EB).compress(data)
    quant = pack_sections(
        {k: frame.sections[k] for k in ("meta", "tree", "codes")}
    )
    rest = pack_sections(
        {k: frame.sections[k] for k in ("unpred", "coeffs", "exact")}
    )
    cipher = AES128(KEY)
    iv = bytes(16)
    before = zlib_compress(
        cipher.encrypt_cbc(quant, iv=iv).ciphertext + rest
    )
    after = cipher.encrypt_cbc(zlib_compress(quant + rest), iv=iv).ciphertext
    return data.nbytes, quant, len(before), len(after)


def test_ablation_zlib_order(benchmark):
    rows = []
    labels = []
    stats = {}
    for name in ("qi", "nyx"):
        nbytes, quant, before, after = _variants(name)
        labels.append(name)
        rows.append([
            nbytes / before,
            nbytes / after,
            shannon_entropy(quant),
        ])
        stats[name] = (nbytes / before, nbytes / after)
    emit(
        "ablation_zlib_order",
        format_grid(
            f"Ablation: CR with AES before vs after zlib @ eb={EB:g} "
            f"(size={BENCH_SIZE})",
            labels,
            ["CR (encrypt before)", "CR (encrypt after)",
             "quant entropy (bits/B)"],
            rows,
        ),
    )

    # Compressible data: encrypting first destroys zlib's leverage.
    assert stats["qi"][1] > 1.5 * stats["qi"][0]
    # Hard data: the placement barely matters (paper Sec. V-D).
    assert stats["nyx"][1] < 1.25 * stats["nyx"][0]

    benchmark.pedantic(lambda: _variants("qi"), rounds=3, iterations=1)
