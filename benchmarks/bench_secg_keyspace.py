"""Sec. V-G — security analysis numbers.

Reproduces the quantitative claims: brute-forcing AES-128 at the
paper's hypothetical 22x10^19 encryptions/second takes ~10^10 years;
the effective 2^64 space of ref. [63] would fall in under a second
(why the nominal 2^128 is what matters); the biclique shortcut is
2^126.1 — "not feasible"; and the Huffman-tree guess space alone
exceeds the AES key space for realistic alphabets.
"""

from repro.bench.tables import format_comparison
from repro.security.keyspace import (
    PAPER_TEST_RATE,
    BruteForceModel,
    biclique_complexity,
    huffman_tree_guess_space,
)

from conftest import emit


def test_secg_keyspace(benchmark):
    full = BruteForceModel(128, PAPER_TEST_RATE)
    effective = BruteForceModel(64, PAPER_TEST_RATE)
    biclique = BruteForceModel(biclique_complexity(128), PAPER_TEST_RATE)

    emit(
        "secg_keyspace",
        format_comparison(
            "Sec. V-G: brute-force cost model "
            f"(attacker rate {PAPER_TEST_RATE:.0e} enc/s)",
            [
                ("2^128 sweep (years; paper ~3.7e10)", 3.7e10,
                 full.years_worst_case()),
                ("2^64 effective sweep (seconds)", float("nan"),
                 effective.seconds_worst_case()),
                ("biclique 2^126.1 sweep (years)", float("nan"),
                 biclique.years_worst_case()),
                ("tree guess space, 5k symbols (log2)", float("nan"),
                 huffman_tree_guess_space(5000)),
            ],
            labels=("paper", "computed"),
        ),
    )

    # Same order of magnitude as the paper's quoted figure.
    assert 1e10 < full.years_worst_case() < 1e11
    assert effective.seconds_worst_case() < 1.0
    assert biclique.is_infeasible()
    assert huffman_tree_guess_space(5000) > 128.0

    benchmark.pedantic(
        lambda: BruteForceModel(128).years_expected(), rounds=5, iterations=100
    )
