#!/usr/bin/env python3
"""Run every table/figure benchmark and print the collected results.

Equivalent to ``pytest benchmarks/ --benchmark-only`` followed by
``cat benchmarks/results/*.txt`` — convenient for regenerating
EXPERIMENTS.md's numbers in one shot::

    python benchmarks/run_all.py [--size tiny|small|medium]
"""

from __future__ import annotations

import argparse
import glob
import os
import subprocess
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", default="tiny",
                        choices=("tiny", "small", "medium"))
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    here = os.path.dirname(os.path.abspath(__file__))
    env = dict(os.environ,
               REPRO_BENCH_SIZE=args.size,
               REPRO_BENCH_REPEATS=str(args.repeats))
    rc = subprocess.call(
        [sys.executable, "-m", "pytest", here, "--benchmark-only", "-q"],
        env=env,
    )
    print("\n" + "=" * 72)
    for path in sorted(glob.glob(os.path.join(here, "results", "*.txt"))):
        print(f"\n### {os.path.basename(path)}\n")
        with open(path) as fh:
            print(fh.read())
    return rc


if __name__ == "__main__":
    sys.exit(main())
