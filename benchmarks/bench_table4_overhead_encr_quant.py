"""Table IV — Encr-Quant compression-time overhead (% of plain SZ).

Paper: the least stable scheme — up to ~133% on compressible datasets
(QI, CLOUDf48), whose large codeword streams must be encrypted *and*
whose randomized bytes slow their zlib pass, but close to Cmpr-Encr on
unpredictable-dominated data like Nyx.

Known substrate difference (recorded in EXPERIMENTS.md): CPython's
zlib traverses *incompressible* (ciphertext) input faster than
compressible input at these sizes, the opposite sign from the authors'
measurement — so our Encr-Quant cells hover near (sometimes just
under) 100% instead of reaching 133%.  The encryption-volume part of
the effect (Encr-Quant feeds more bytes to AES than Cmpr-Encr on
predictable-dominated data, Sec. V-D) is reproduced and asserted via
the schemes' ``encrypted_bytes`` accounting.
"""

import numpy as np

from repro.bench.harness import EBS, dataset_cache, measure_overhead_paired
from repro.bench.tables import format_grid
from repro.core.schemes import SCHEMES
from repro.sz.compressor import SZCompressor

from conftest import BENCH_REPEATS, BENCH_SIZE, TABLE_DATASETS, emit


def test_table4_overhead(eb_labels, benchmark):
    rows = []
    for name in TABLE_DATASETS:
        data = np.asarray(dataset_cache(name, size=BENCH_SIZE))
        rows.append([
            measure_overhead_paired(
                data, "encr_quant", eb, repeats=max(BENCH_REPEATS, 3)
            )
            for eb in EBS
        ])
    emit(
        "table4_overhead_encr_quant",
        format_grid(
            "Table IV: time overhead for Encr-Quant when compressing "
            f"(%, paired, modeled hardware AES, size={BENCH_SIZE})",
            list(TABLE_DATASETS), eb_labels, rows,
        ),
    )
    flat = [v for row in rows for v in row]
    # Cells stay in a sane band (see the module docstring for why the
    # paper's 133% spikes do not appear on this substrate).
    assert min(flat) > 90.0
    assert max(flat) < 120.0

    # The *encryption volume* half of the paper's argument: on a
    # predictable-dominated dataset, Encr-Quant encrypts more bytes
    # than Cmpr-Encr's entire compressed stream (Sec. V-D's 8.8 MB vs
    # 5.3 MB example for CLOUDf48).
    data = np.asarray(dataset_cache("cloudf48", size=BENCH_SIZE))
    frame = SZCompressor(1e-7).compress(data)
    from repro.sz.lossless import compress as zlib_compress
    from repro.core.container import pack_sections

    quant_bytes = SCHEMES["encr_quant"].encrypted_bytes(frame.sections)
    cmpr_encr_stream = len(zlib_compress(pack_sections(frame.sections)))
    assert quant_bytes > cmpr_encr_stream

    benchmark.pedantic(
        lambda: measure_overhead_paired(
            data, "encr_quant", 1e-4, repeats=1
        ),
        rounds=3, iterations=1,
    )
