"""Table VI — NIST SP800-22 pass rates.

The paper's protocol: the compressed-encrypted file is split into 12
bitstreams; each runs all 15 tests; the table reports per-test pass
rates.  Cases:

* Encr-Quant on Nyx @ 1e-7 (only ~7% of data encrypted): fails most
  tests (paper column 1: 50-100%);
* Encr-Quant on Q2 @ 1e-6 (~85% encrypted): passes everything;
* Cmpr-Encr: passes everything (fully ciphertext);
* Encr-Huffman: fails (only the tiny tree is ciphertext).
"""

import math

import numpy as np

from repro.bench.harness import KEY, dataset_cache
from repro.core.pipeline import SecureCompressor
from repro.security.nist import run_suite

from conftest import emit

#: NIST needs long streams; always use the 'small' presets here.
NIST_SIZE = "small"
N_STREAMS = 12


def _container(name, scheme, eb, seed=5):
    data = dataset_cache(name, size=NIST_SIZE)
    sc = SecureCompressor(
        scheme, eb, key=KEY, random_state=np.random.default_rng(seed)
    )
    return sc.compress(np.asarray(data)).container


def _mean_rate(result):
    rates = [r for r in result.pass_rates().values() if not math.isnan(r)]
    return sum(rates) / len(rates)


def test_table6_nist(benchmark):
    cases = {
        "Encr-Quant / Nyx @1e-7": _container("nyx", "encr_quant", 1e-7),
        "Encr-Quant / Q2 @1e-6": _container("q2", "encr_quant", 1e-6),
        "Cmpr-Encr / Q2 @1e-6": _container("q2", "cmpr_encr", 1e-6),
        "Encr-Huffman / Q2 @1e-6": _container("q2", "encr_huffman", 1e-6),
    }
    results = {
        label: run_suite(blob, n_streams=N_STREAMS)
        for label, blob in cases.items()
    }
    emit(
        "table6_nist",
        "\n\n".join(
            f"Table VI — {label} ({N_STREAMS} streams)\n"
            + result.format_table()
            for label, result in results.items()
        ),
    )

    # Paper shape: Cmpr-Encr fully random; Encr-Quant random only when
    # the encrypted fraction dominates; Encr-Huffman not random.
    assert _mean_rate(results["Cmpr-Encr / Q2 @1e-6"]) > 0.95
    assert _mean_rate(results["Encr-Quant / Q2 @1e-6"]) > 0.9
    assert _mean_rate(results["Encr-Quant / Nyx @1e-7"]) < 0.9
    assert _mean_rate(results["Encr-Huffman / Q2 @1e-6"]) < 0.5
    assert (
        _mean_rate(results["Encr-Quant / Nyx @1e-7"])
        < _mean_rate(results["Encr-Quant / Q2 @1e-6"])
    )

    # Benchmark kernel: the suite on one modest ciphertext stream.
    blob = cases["Cmpr-Encr / Q2 @1e-6"][: 40_000]
    benchmark.pedantic(
        lambda: run_suite(blob, n_streams=2,
                          tests=("frequency", "runs", "serial")),
        rounds=3, iterations=1,
    )
