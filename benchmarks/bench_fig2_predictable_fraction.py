"""Fig. 2 — predictable-data size as a percentage of the compressed
stream, and the predictable-point fraction per dataset/bound.

The paper plots the quantization-array share for four datasets; the
share is what motivates Encr-Quant ("encrypting the quantization array
is a relatively light approach ... for datasets with a relatively small
percentage of predictable data").
"""

from repro.bench.harness import EBS, dataset_cache
from repro.bench.tables import format_grid
from repro.sz import SZCompressor

from conftest import BENCH_SIZE, TABLE_DATASETS, emit

#: Fig. 2 uses four of the evaluation datasets.
FIG2_DATASETS = ("cloudf48", "nyx", "q2", "qi")


def test_fig2_quant_array_share(grid, eb_labels, benchmark):
    share_rows = []
    frac_rows = []
    for name in FIG2_DATASETS:
        shares = []
        fracs = []
        for eb in EBS:
            m = grid[(name, "none", eb)]
            stats = m.sz_stats
            total = sum(stats.section_bytes.values())
            shares.append(100.0 * stats.quant_array_bytes / total)
            fracs.append(100.0 * stats.predictable_fraction)
        share_rows.append(shares)
        frac_rows.append(fracs)

    emit(
        "fig2_predictable_fraction",
        format_grid(
            "Fig. 2a: quantization array (tree+codes) as % of the "
            f"pre-lossless stream (size={BENCH_SIZE})",
            list(FIG2_DATASETS), eb_labels, share_rows, precision=2,
        )
        + "\n\n"
        + format_grid(
            "Fig. 2b: predictable points as % of all points",
            list(FIG2_DATASETS), eb_labels, frac_rows, precision=2,
        ),
    )

    by_name = dict(zip(FIG2_DATASETS, frac_rows))
    # Paper: Nyx at 1e-7 is an extreme case with only ~7% predictable,
    # while Q2/CLOUDf48 are predictability-dominated.
    assert by_name["nyx"][0] < 35.0
    assert by_name["nyx"][-1] > 90.0
    assert by_name["q2"][-1] > 99.0

    data = dataset_cache("nyx", size=BENCH_SIZE)
    benchmark.pedantic(
        lambda: SZCompressor(1e-5).compress(data).stats.predictable_fraction,
        rounds=3, iterations=1,
    )
