"""Quick-bench: LZ7H codec throughput/CR vs zlib, plus archive dedup.

Standalone (no pytest plugins): times ``repro.sz.lz77`` against zlib
level 6 on three archive-shaped corpora (repetitive text log, periodic
checkpoint shard, incompressible noise), then smoke-tests the SECB v2
archive life cycle — mixed corpus in, duplicated shard stored once,
``verify --deep`` clean, ``gc`` compacts after a remove.  Writes
``BENCH_lz.json`` at the repo root (or ``REPRO_BENCH_OUT``).  CI runs
this as a smoke check; the acceptance bars are a round-trip-exact
codec, an LZ7H compression ratio >= 0.5x of zlib's on every corpus
(>= 1.0x on the long-range periodic one, where the 64 KiB window is
the point), and an archive dedup ratio >= 1.5 on the mixed corpus.

Usage::

    PYTHONPATH=src python benchmarks/bench_lz_archive.py

Environment knobs: ``REPRO_BENCH_REPEATS`` (default 3, best-of),
``REPRO_BENCH_LZ_SCALE`` (corpus size multiplier, default 1) and
``REPRO_BENCH_OUT`` (output path override).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import zlib

import numpy as np

from repro.archive import ArchiveStore
from repro.sz import lz77

REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
SCALE = int(os.environ.get("REPRO_BENCH_LZ_SCALE", "1"))
OUT_PATH = os.environ.get(
    "REPRO_BENCH_OUT",
    os.path.join(os.path.dirname(__file__), "..", "BENCH_lz.json"),
)
KEY = bytes(range(16))


def _best_seconds(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _corpora() -> dict:
    log = b"".join(
        b"2026-08-08T12:00:%02d INFO worker-%d step=%d loss=%.6f\n"
        % (i % 60, i % 8, i, 1.0 / (i + 1))
        for i in range(4000 * SCALE)
    )
    # Period ~ 48 KiB: repeats sit beyond zlib's 32 KiB window but
    # inside LZ7H's 64 KiB one — the case the codec exists for.
    unit = np.random.default_rng(7).integers(
        0, 256, 48 * 1024, dtype=np.uint8
    ).tobytes()
    shard = unit * (6 * SCALE)
    noise = np.random.default_rng(11).integers(
        0, 256, 256 * 1024 * SCALE, dtype=np.uint8
    ).tobytes()
    return {"text_log": log, "periodic_shard": shard, "noise": noise}


def main() -> dict:
    result: dict = {"repeats": REPEATS, "scale": SCALE, "codec": {}}

    for name, data in _corpora().items():
        mb = len(data) / 1e6
        lz_blob = lz77.compress(data)
        assert lz77.decompress(lz_blob) == data, f"{name}: round-trip"
        zl_blob = zlib.compress(data, 6)

        row = {
            "raw_mb": round(mb, 3),
            "cr_lz77h": round(len(data) / len(lz_blob), 2),
            "cr_zlib6": round(len(data) / len(zl_blob), 2),
            "compress_mb_per_s": round(
                mb / _best_seconds(lambda: lz77.compress(data)), 2
            ),
            "decompress_mb_per_s": round(
                mb / _best_seconds(lambda: lz77.decompress(lz_blob)), 2
            ),
            "zlib6_compress_mb_per_s": round(
                mb / _best_seconds(lambda: zlib.compress(data, 6)), 2
            ),
        }
        row["cr_vs_zlib"] = round(row["cr_lz77h"] / row["cr_zlib6"], 2)
        # Acceptance bars: never pathological, and a clear win where
        # the repeats exceed zlib's window.
        assert row["cr_vs_zlib"] >= 0.5, f"{name}: LZ7H CR collapsed"
        if name == "periodic_shard":
            assert row["cr_vs_zlib"] >= 1.0, (
                "long-range dedup regressed below zlib"
            )
        result["codec"][name] = row

    # ------------------------------------------------------------------
    # Archive life cycle on the mixed corpus: duplicated shard stored
    # once, deep verify clean, gc compacts.
    # ------------------------------------------------------------------
    corpora = _corpora()
    field = np.cumsum(
        np.random.default_rng(3).standard_normal((64, 64)), axis=1
    ).astype(np.float32)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.secb")
        store = ArchiveStore.create(path, key=KEY, cipher_mode="ctr")
        t0 = time.perf_counter()
        store.add_bytes("log", corpora["text_log"], codec="lz77h")
        store.add_bytes("shard-a", corpora["periodic_shard"], codec="zlib")
        store.add_bytes("shard-b", corpora["periodic_shard"], codec="zlib")
        store.add_bytes("noise", corpora["noise"], codec="store")
        store.add_field("field", field, scheme="encr_huffman",
                        error_bound=1e-3)
        add_secs = time.perf_counter() - t0
        size_before = os.path.getsize(path)
        stats = store.stats()
        assert store.verify(deep=True) == []
        assert store.extract_bytes("shard-b") == corpora["periodic_shard"]
        store.remove("noise")
        dropped = store.gc()
        result["archive"] = {
            "stats": stats,
            "add_mb_per_s": round(
                stats["raw_bytes"] / 1e6 / add_secs, 2
            ),
            "file_bytes_before_gc": size_before,
            "file_bytes_after_gc": os.path.getsize(path),
            "blobs_gced": dropped,
        }
        assert stats["dedup_ratio"] >= 1.5, "mixed-corpus dedup regressed"
        assert dropped > 0 and os.path.getsize(path) < size_before
        assert ArchiveStore(path, key=KEY,
                            cipher_mode="ctr").verify(deep=True) == []

    with open(os.path.abspath(OUT_PATH), "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
    return result


if __name__ == "__main__":
    main()
