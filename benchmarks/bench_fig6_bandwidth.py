"""Fig. 6 — compression and decompression bandwidth for Temperature,
CLOUDf48 and Nyx under all four methods.

Paper shapes to reproduce (absolute MB/s are testbed-specific):

* bandwidth generally rises as the bound loosens;
* the three encrypting methods are nearly tied on Nyx;
* Encr-Huffman tracks (or beats) plain SZ, while Cmpr-Encr never
  exceeds plain SZ (its encryption is pure added work);
* Encr-Quant trails on compressible data (it encrypts the large
  codeword stream *and* slows the zlib stage).
"""

from repro.bench.harness import (
    EBS, SCHEME_LABELS, dataset_cache, measure_scheme, trace_cell,
)
from repro.bench.tables import format_series

from conftest import ALL_SCHEMES, BANDWIDTH_DATASETS, BENCH_SIZE, emit, emit_trace


def test_fig6_bandwidth(grid, eb_labels, benchmark):
    blocks = []
    bw = {}
    for name in BANDWIDTH_DATASETS:
        comp_series = {}
        decomp_series = {}
        for scheme in ALL_SCHEMES:
            label = SCHEME_LABELS[scheme]
            comp_series[label] = [
                grid[(name, scheme, eb)].compress_bw_modeled for eb in EBS
            ]
            decomp_series[label] = [
                grid[(name, scheme, eb)].decompress_bw_modeled for eb in EBS
            ]
            bw[(name, scheme)] = comp_series[label]
        blocks.append(
            format_series(
                f"Fig. 6 — {name}: compression bandwidth (MB/s, modeled "
                f"hardware AES, size={BENCH_SIZE})",
                eb_labels, comp_series, bar=True,
            )
            + "\n"
            + format_series(
                f"Fig. 6 — {name}: decompression bandwidth (MB/s)",
                eb_labels, decomp_series, bar=True,
            )
        )
    emit("fig6_bandwidth", "\n\n".join(blocks))

    # A trace record of the headline cell (Temperature, Encr-Huffman):
    # the span byte flow explains the bandwidth number — compress root
    # bytes_in is the original size the MB/s figures divide by.
    doc = trace_cell(dataset_cache("t", size=BENCH_SIZE), "encr_huffman", 1e-4)
    emit_trace("fig6_t_encr_huffman", doc)
    assert doc["roots"][0]["name"] == "compress"
    assert (doc["roots"][0]["bytes_in"]
            == dataset_cache("t", size=BENCH_SIZE).nbytes)

    # Shape checks.  The emitted series are wall-clock (that is what
    # the figure shows), but wall-clock comparisons of 2-8 ms cells
    # measured minutes apart carry 10-20% machine noise — so the
    # assertions use the paired measurement, where both pipelines share
    # each run's SZ stage and only the genuinely differing stages are
    # compared (see bench_table3/4/5).
    from repro.bench.harness import dataset_cache as _cache
    from repro.bench.harness import measure_overhead_paired
    import numpy as np

    for name in BANDWIDTH_DATASETS:
        data = np.asarray(_cache(name, size=BENCH_SIZE))
        cmpr = measure_overhead_paired(data, "cmpr_encr", 1e-5, repeats=3)
        huff = measure_overhead_paired(data, "encr_huffman", 1e-5, repeats=3)
        # Cmpr-Encr pays for encrypting the full stream...
        assert cmpr > 99.0, name
        # ...while Encr-Huffman stays within a few percent of plain SZ
        # (band sized for a loaded machine; Table V pins it tighter).
        assert 93.0 < huff < 108.0, name
    # On compressible data Encr-Quant must feed AES more bytes than
    # Encr-Huffman by orders of magnitude (its bandwidth cost at paper
    # scale; at tiny scale wall-clock differences sit inside noise, so
    # assert the volume, which is exact).
    quant_bytes = grid[("cloudf48", "encr_quant", 1e-4)].encrypted_bytes
    tree_bytes = grid[("cloudf48", "encr_huffman", 1e-4)].encrypted_bytes
    assert quant_bytes > 10 * tree_bytes

    data = dataset_cache("t", size=BENCH_SIZE)
    benchmark.pedantic(
        lambda: measure_scheme(data, "encr_huffman", 1e-4, repeats=1),
        rounds=3, iterations=1,
    )
