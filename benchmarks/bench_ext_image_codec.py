"""Extension — the generalization claim (paper Sec. IV).

"We note that our ideas can be translated into developing white-box
integrations of compression and encryption for any compressor that
leverages Huffman encoding (e.g., MGARD and JPEG)."

This benchmark runs the Fig. 5 normalized-CR experiment on the
JPEG-like image codec: the Encr-Quant collapse and the Encr-Huffman
near-baseline behaviour must transfer from SZ to a completely
different codec, because both effects live at the tree/quantization
sections, not in the predictor.
"""

import numpy as np

from repro.bench.harness import KEY
from repro.bench.tables import format_grid
from repro.core.metrics import psnr
from repro.imagecodec import ImageCodec, SecureImageCompressor, synthetic_image
from repro.imagecodec.testimages import IMAGE_NAMES

from conftest import emit

QUALITIES = (30, 75, 95)
SCHEMES = ("none", "cmpr_encr", "encr_quant", "encr_huffman")
SIZE = 128


def test_image_codec_generalization(benchmark):
    tables = []
    normalized = {}
    for scheme in SCHEMES[1:]:
        rows = []
        for name in IMAGE_NAMES:
            img = synthetic_image(name, SIZE)
            row = []
            for quality in QUALITIES:
                base = SecureImageCompressor("none", quality).compress(img)
                other = SecureImageCompressor(
                    scheme, quality, key=KEY,
                    random_state=np.random.default_rng(3),
                ).compress(img)
                row.append(base.compressed_bytes / other.compressed_bytes)
            rows.append(row)
            normalized[(scheme, name)] = row
        tables.append(
            format_grid(
                f"Image codec ({scheme}): CR normalized to plain codec",
                list(IMAGE_NAMES), [f"q={q}" for q in QUALITIES], rows,
                corner="Image", precision=4,
            )
        )
    emit("ext_image_codec", "\n\n".join(tables))

    for name in IMAGE_NAMES:
        for q_idx in range(len(QUALITIES)):
            # Cmpr-Encr and Encr-Huffman keep the ratio (modulo the
            # fixed container cost, large relative to ~200-byte
            # gradient streams).
            img_bytes = SecureImageCompressor("none", QUALITIES[q_idx]).compress(
                synthetic_image(name, SIZE)
            ).compressed_bytes
            slack = 64.0 / img_bytes
            assert normalized[("cmpr_encr", name)][q_idx] > 0.97 - slack
            assert normalized[("encr_huffman", name)][q_idx] > 0.97 - slack
    # The Encr-Quant collapse transfers: worst on the most compressible
    # image (gradient), mild on the least compressible (texture).
    assert min(normalized[("encr_quant", "gradient")]) < 0.75
    assert min(normalized[("encr_quant", "texture")]) > 0.8

    # Also confirm fidelity is untouched by the schemes.
    img = synthetic_image("scene", SIZE)
    sic = SecureImageCompressor("encr_huffman", 75, key=KEY)
    out = sic.decompress(sic.compress(img).container)
    codec = ImageCodec(75)
    sections, _ = codec.encode(img)
    assert psnr(img, out) == psnr(img, codec.decode(sections))

    benchmark.pedantic(
        lambda: SecureImageCompressor("encr_huffman", 75, key=KEY).compress(
            img
        ),
        rounds=3, iterations=1,
    )
