"""Quick-bench: the CTR fast path vs Algorithm-1 CBC.

Standalone (no pytest plugins): times the scalar-chained CBC path
against the batched CTR path end-to-end on the encryption-heavy
Cmpr-Encr scheme over a fig6-size field, the raw keystream generator
monolithic vs segmented, and the keystream prefetcher's
compression/encryption overlap.  Writes ``BENCH_crypto.json`` at the
repo root (or ``REPRO_BENCH_OUT``).  CI runs this as a smoke check at
tiny dims; the acceptance bar — CTR compress+encrypt >= 2x CBC — only
applies to full-size runs (``REPRO_BENCH_DIMS`` unset).

Correctness is asserted at every size: segmented keystream must be
bit-identical to monolithic, prefetched CTR containers must be
bit-identical to serial ones, and seeded CBC containers must not drift
between runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_crypto.py

Environment knobs: ``REPRO_BENCH_REPEATS`` (default 3, best-of),
``REPRO_BENCH_DATASET`` (default ``t``), ``REPRO_BENCH_DIMS``
(comma-separated; setting it waives the full-size speedup bar so CI
can smoke-test at tiny sizes) and ``REPRO_BENCH_OUT`` (output path
override).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core import trace
from repro.core.pipeline import SecureCompressor
from repro.crypto import modes
from repro.crypto.keyschedule import expand_key
from repro.datasets import generate

EB = 1e-5  # matches bench_ablation_modes: encryption-heavy regime
DATASET = os.environ.get("REPRO_BENCH_DATASET", "t")
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
FULL_SIZE = "REPRO_BENCH_DIMS" not in os.environ
DIMS = (
    None
    if FULL_SIZE
    else tuple(int(d) for d in os.environ["REPRO_BENCH_DIMS"].split(","))
)
OUT_PATH = os.environ.get(
    "REPRO_BENCH_OUT",
    os.path.join(os.path.dirname(__file__), "..", "BENCH_crypto.json"),
)
KEY = bytes(range(16))


def _best_seconds(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> dict:
    # fig6-size: the full "small" registry preset, as used by the
    # bandwidth figure at REPRO_BENCH_SIZE=small.
    field = np.asarray(
        generate(DATASET, dims=DIMS, size="small"), dtype=np.float32
    )
    field_mb = field.nbytes / 1e6
    result: dict = {
        "dataset": DATASET,
        "field_mb": round(field_mb, 3),
        "error_bound": EB,
        "repeats": REPEATS,
        "full_size": FULL_SIZE,
        "keystream_mb_per_s": {},
        "end_to_end_s": {},
        "stage_encrypt_s": {},
        "prefetch": {},
    }

    # ------------------------------------------------------------------
    # Raw keystream: monolithic batch vs bounded segments.  Segmenting
    # caps peak memory at ~128 KiB of counter blocks per batch; the
    # bytes must not change.
    # ------------------------------------------------------------------
    ek = expand_key(KEY)
    nonce = b"benchpfx"
    n_bytes = max(1, min(field.nbytes, 4 << 20))
    mono = modes.ctr_keystream(ek, nonce, n_bytes, segment_blocks=1 << 30)
    seg = modes.ctr_keystream(ek, nonce, n_bytes)
    assert np.array_equal(mono, seg), (
        "keystream drift: segmented stream differs from monolithic"
    )
    ks_mb = n_bytes / 1e6
    secs = _best_seconds(
        lambda: modes.ctr_keystream(ek, nonce, n_bytes, segment_blocks=1 << 30)
    )
    result["keystream_mb_per_s"]["monolithic"] = round(ks_mb / secs, 2)
    secs = _best_seconds(lambda: modes.ctr_keystream(ek, nonce, n_bytes))
    result["keystream_mb_per_s"]["segmented"] = round(ks_mb / secs, 2)
    result["keystream_segment_blocks"] = modes.CTR_SEGMENT_BLOCKS

    # ------------------------------------------------------------------
    # End-to-end compress+encrypt: Cmpr-Encr encrypts its whole
    # compressed stream, so this is where CBC's sequential chaining
    # hurts and where the CTR prefetcher's overlap pays.
    # ------------------------------------------------------------------
    for mode in ("cbc", "ctr"):
        sc = SecureCompressor("cmpr_encr", EB, key=KEY, cipher_mode=mode)
        res = sc.compress(field)  # warm-up; also sizes the ciphertext
        result["end_to_end_s"][mode] = round(
            _best_seconds(lambda: sc.compress(field)), 4
        )
        result["stage_encrypt_s"][mode] = round(
            res.times.seconds.get("encrypt", 0.0), 4
        )
        if mode == "cbc":
            result["encrypted_mb"] = round(res.encrypted_bytes / 1e6, 3)
    result["ctr_speedup_end_to_end"] = round(
        result["end_to_end_s"]["cbc"] / result["end_to_end_s"]["ctr"], 2
    )
    if FULL_SIZE:
        assert result["ctr_speedup_end_to_end"] >= 2.0, (
            "CTR fast path regressed: end-to-end compress+encrypt is "
            f"only {result['ctr_speedup_end_to_end']}x CBC (bar: 2x)"
        )

    # ------------------------------------------------------------------
    # Prefetch overlap: a traced CTR compress exposes how much keystream
    # generation hid under the SZ stages, and prefetch on/off must be
    # bit-identical under the same seeded nonce.
    # ------------------------------------------------------------------
    tr = trace.Tracer()
    sc = SecureCompressor("cmpr_encr", EB, key=KEY, cipher_mode="ctr")
    before = trace.counters_snapshot()
    sc.compress(field, tracer=tr)
    after = trace.counters_snapshot()
    root = tr.export()["roots"][0]
    result["prefetch"]["overlap_ms"] = round(
        root["attrs"].get("keystream_overlap_ms", 0.0), 3
    )
    result["prefetch"]["wait_ms"] = round(
        root["attrs"].get("keystream_wait_ms", 0.0), 3
    )
    for counter in ("aes.blocks_keystream", "aes.keystream_segments",
                    "aes.keystream_prefetch_ms"):
        result["prefetch"][counter] = int(
            after.get(counter, 0) - before.get(counter, 0)
        )
    assert result["prefetch"]["aes.keystream_segments"] >= 1

    def _seeded(prefetch: bool) -> bytes:
        return SecureCompressor(
            "cmpr_encr", EB, key=KEY, cipher_mode="ctr",
            random_state=np.random.default_rng(11),
            allow_nonce_reuse=True,  # bench-only reproducibility
            keystream_prefetch=prefetch,
        ).compress(field).container

    assert _seeded(True) == _seeded(False), (
        "prefetch drift: pipelined keystream changed the CTR container"
    )
    result["prefetch"]["bit_identical_to_serial"] = True

    # ------------------------------------------------------------------
    # CBC frame drift: Algorithm-1 fidelity means seeded CBC containers
    # are exactly reproducible run to run (the format-stability digests
    # pin them against the seed; this guards against in-process drift).
    # ------------------------------------------------------------------
    def _cbc_seeded() -> bytes:
        return SecureCompressor(
            "cmpr_encr", EB, key=KEY,
            random_state=np.random.default_rng(11),
        ).compress(field).container

    assert _cbc_seeded() == _cbc_seeded(), (
        "CBC frame drift: seeded container changed between runs"
    )
    result["cbc_frames_deterministic"] = True

    with open(os.path.abspath(OUT_PATH), "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
    return result


if __name__ == "__main__":
    main()
