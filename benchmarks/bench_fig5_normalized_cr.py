"""Fig. 5 — compression ratio of each scheme normalized to plain SZ.

Paper shape: Cmpr-Encr and Encr-Huffman both stay above 0.99 of the
baseline everywhere (largest dip ~0.26% on Nyx@1e-7), while Encr-Quant
collapses on compressible datasets (QI/Q2 down to 5-20% of baseline,
worst case ~0.01%) and is nearly free on hard datasets (Nyx).
"""

from repro.bench.harness import EBS, dataset_cache, measure_scheme
from repro.bench.tables import format_grid
from repro.core.metrics import normalized_cr

from conftest import BENCH_SIZE, TABLE_DATASETS, emit

SCHEMES = ("cmpr_encr", "encr_quant", "encr_huffman")


def test_fig5_normalized_cr(grid, eb_labels, benchmark):
    tables = []
    values = {}
    for scheme in SCHEMES:
        rows = []
        for name in TABLE_DATASETS:
            row = []
            for eb in EBS:
                base = grid[(name, "none", eb)].cr
                row.append(normalized_cr(grid[(name, scheme, eb)].cr, base))
            rows.append(row)
            values[(scheme, name)] = row
        tables.append(
            format_grid(
                f"Fig. 5 ({scheme}): CR normalized to plain SZ "
                f"(size={BENCH_SIZE})",
                list(TABLE_DATASETS), eb_labels, rows, precision=4,
            )
        )
    emit("fig5_normalized_cr", "\n\n".join(tables))

    # Shape assertions, per the paper's Sec. V-C discussion.  At tiny
    # scale the *fixed* per-container cost (CBC padding, zlib wrapper:
    # tens of bytes) can be several percent of an ultra-compressed
    # stream, so the >=99% proportional claim carries a 64-byte
    # absolute allowance.
    for name in TABLE_DATASETS:
        for eb_idx, eb in enumerate(EBS):
            base_bytes = grid[(name, "none", eb)].compressed_bytes
            for scheme in ("encr_huffman", "cmpr_encr"):
                got = grid[(name, scheme, eb)].compressed_bytes
                assert got <= base_bytes / 0.99 + 64, (scheme, name, eb)
    # Encr-Quant craters on the most compressible dataset...
    assert min(values[("encr_quant", "qi")]) < 0.6
    # ...hits hard data far less (paper: "greater impact on
    # easy-to-compress datasets"), and is nearly free on Nyx at the
    # unpredictable-dominated tight bound.
    assert min(values[("encr_quant", "nyx")]) > 2 * min(values[("encr_quant", "qi")])
    assert values[("encr_quant", "nyx")][0] > 0.9  # eb = 1e-7

    data = dataset_cache("qi", size=BENCH_SIZE)
    benchmark.pedantic(
        lambda: measure_scheme(data, "encr_quant", 1e-4, repeats=1).cr,
        rounds=3, iterations=1,
    )
