"""Fig. 4 — serialized Huffman tree as a percentage of the
quantization array (tree + codewords).

Paper: "the Huffman tree comprises no more than 4.5% of the
quantization array" (with Nyx's ~4.4% the largest).  At scaled-down
data the tree share is inflated by the smaller codeword stream, so the
reproduction target is the *ordering* (hard datasets have the largest
tree share) and the smallness that makes Encr-Huffman cheap.
"""

from repro.bench.harness import EBS, dataset_cache
from repro.bench.tables import format_grid
from repro.sz import huffman
from repro.sz.compressor import SZCompressor

from conftest import BENCH_SIZE, TABLE_DATASETS, emit


def test_fig4_tree_fraction(grid, eb_labels, benchmark):
    rows = []
    for name in TABLE_DATASETS:
        rows.append([
            100.0 * grid[(name, "none", eb)].sz_stats.tree_fraction_of_quant
            for eb in EBS
        ])
    emit(
        "fig4_huffman_tree_fraction",
        format_grid(
            "Fig. 4: serialized Huffman tree as % of the quantization "
            f"array (size={BENCH_SIZE})",
            list(TABLE_DATASETS), eb_labels, rows, precision=2,
        ),
    )
    by_name = dict(zip(TABLE_DATASETS, rows))
    # The tree never dominates the quantization array...
    assert max(max(r) for r in rows) < 50.0
    # ...and the easy datasets keep it far smaller than the hard ones
    # at the loose end (few distinct codes -> tiny alphabet).
    assert by_name["cloudf48"][-1] < by_name["nyx"][-1]

    data = dataset_cache("t", size=BENCH_SIZE)
    comp = SZCompressor(1e-4)

    def tree_bytes():
        frame = comp.compress(data)
        return len(frame.sections["tree"])

    benchmark.pedantic(tree_bytes, rounds=3, iterations=1)
