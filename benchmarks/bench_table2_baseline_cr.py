"""Table II — baseline compression ratio with no encryption.

Paper anchors (full-size SDRBench data; ours is scaled + synthetic, so
the *ordering* and per-column trends are the reproduction target —
see EXPERIMENTS.md):

    CLOUDf48  17.959 .. 2380.782       QI  67.931 .. 3654.457
    Nyx        1.145 ..    3.082       T    3.076 ..    9.997
"""

from repro.bench.harness import EBS, dataset_cache, measure_scheme
from repro.bench.tables import format_grid

from conftest import BENCH_SIZE, TABLE_DATASETS, emit


def test_table2_baseline_cr(grid, eb_labels, benchmark):
    rows = [
        [grid[(name, "none", eb)].cr for eb in EBS]
        for name in TABLE_DATASETS
    ]
    emit(
        "table2_baseline_cr",
        format_grid(
            "Table II: Baseline compression ratio with no encryption "
            f"(size={BENCH_SIZE})",
            list(TABLE_DATASETS),
            eb_labels,
            rows,
        ),
    )
    # Paper shape checks: QI/CLOUDf48 easy, Nyx hard, CR rises with eb.
    by_name = dict(zip(TABLE_DATASETS, rows))
    assert min(by_name["qi"]) > max(by_name["nyx"])
    assert by_name["cloudf48"][-1] > by_name["cloudf48"][0]
    assert by_name["nyx"][-1] > by_name["nyx"][0]

    # Benchmark kernel: one baseline compression of the hard dataset.
    data = dataset_cache("nyx", size=BENCH_SIZE)
    benchmark.pedantic(
        lambda: measure_scheme(data, "none", 1e-4, repeats=1),
        rounds=3, iterations=1,
    )
