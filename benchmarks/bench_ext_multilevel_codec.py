"""Extension — the generalization claim on the MGARD-like codec.

The paper names MGARD alongside JPEG as compressors the white-box
schemes should transfer to (Sec. IV).  This benchmark repeats the
normalized-CR experiment on the multilevel codec and cross-checks all
three codecs side by side: the Encr-Quant collapse and Encr-Huffman's
near-baseline cost must appear in every Huffman-leveraging pipeline.
"""

import numpy as np

from repro.bench.harness import KEY, dataset_cache
from repro.bench.tables import format_grid
from repro.core.pipeline import SecureCompressor
from repro.imagecodec import SecureImageCompressor, synthetic_image
from repro.multilevel import SecureMultilevelCompressor

from conftest import BENCH_SIZE, emit

EB = 1e-3
SCHEMES = ("cmpr_encr", "encr_quant", "encr_huffman")


def _normalized_sizes_sz(name):
    data = np.asarray(dataset_cache(name, size=BENCH_SIZE))
    base = SecureCompressor("none", EB).compress(data).compressed_bytes
    row = []
    for scheme in SCHEMES:
        got = SecureCompressor(
            scheme, EB, key=KEY, random_state=np.random.default_rng(1)
        ).compress(data).compressed_bytes
        row.append(base / got)
    return row


def _normalized_sizes_multilevel(name):
    data = np.asarray(dataset_cache(name, size=BENCH_SIZE))
    base = len(SecureMultilevelCompressor("none", EB).compress(data))
    row = []
    for scheme in SCHEMES:
        smc = SecureMultilevelCompressor(
            scheme, EB, key=KEY, random_state=np.random.default_rng(1)
        )
        row.append(base / len(smc.compress(data)))
    return row


def _normalized_sizes_image():
    img = synthetic_image("scene", 128)
    base = SecureImageCompressor("none", 75).compress(img).compressed_bytes
    row = []
    for scheme in SCHEMES:
        sic = SecureImageCompressor(
            scheme, 75, key=KEY, random_state=np.random.default_rng(1)
        )
        row.append(base / sic.compress(img).compressed_bytes)
    return row


def test_multilevel_generalization(benchmark):
    rows = [
        _normalized_sizes_sz("q2"),
        _normalized_sizes_multilevel("q2"),
        _normalized_sizes_image(),
    ]
    labels = ["SZ (q2)", "multilevel (q2)", "image (scene)"]
    emit(
        "ext_multilevel_codec",
        format_grid(
            f"Generalization: CR normalized to each codec's plain "
            f"baseline @ eb={EB:g} / q=75 (size={BENCH_SIZE})",
            labels, list(SCHEMES), rows, corner="Codec", precision=4,
        ),
    )
    by_codec = dict(zip(labels, rows))
    for label, row in by_codec.items():
        cmpr, quant, huff = row
        # Every codec: Encr-Huffman ~ baseline, Encr-Quant clearly
        # worse than Encr-Huffman on this compressible input.
        assert huff > 0.9, label
        assert cmpr > 0.9, label
        assert quant < huff, label

    data = np.asarray(dataset_cache("q2", size=BENCH_SIZE))
    benchmark.pedantic(
        lambda: SecureMultilevelCompressor(
            "encr_huffman", EB, key=KEY
        ).compress(data),
        rounds=3, iterations=1,
    )
