"""Table V — Encr-Huffman compression-time overhead (% of plain SZ).

Paper: the stable, light scheme — 89.6%-99.5% (i.e. *faster* than
plain SZ in most cells, best case saving 6.5%): only the small tree is
encrypted, and the randomized tree bytes let zlib skip a section it
would otherwise grind on.

Our default Encr-Huffman deflates the tree before encrypting it (a
scale-compensating choice that protects the CR — see DESIGN.md §5), so
its cells land at ~100% ± 1 rather than below; the
``encr_huffman_raw`` variant (the literal Algorithm-1 pipeline) is
measured alongside and reproduces the paper's below-100% behaviour
where the ciphertext tree lets zlib finish sooner.
"""

import numpy as np

from repro.bench.harness import EBS, dataset_cache, measure_overhead_paired
from repro.bench.tables import format_grid

from conftest import BENCH_REPEATS, BENCH_SIZE, TABLE_DATASETS, emit


def _grid_for(scheme):
    rows = []
    for name in TABLE_DATASETS:
        data = np.asarray(dataset_cache(name, size=BENCH_SIZE))
        rows.append([
            measure_overhead_paired(
                data, scheme, eb, repeats=max(BENCH_REPEATS, 3)
            )
            for eb in EBS
        ])
    return rows


def test_table5_overhead(eb_labels, benchmark):
    rows = _grid_for("encr_huffman")
    raw_rows = _grid_for("encr_huffman_raw")
    emit(
        "table5_overhead_encr_huffman",
        format_grid(
            "Table V: time overhead for Encr-Huffman when compressing "
            f"(%, paired, modeled hardware AES, size={BENCH_SIZE})",
            list(TABLE_DATASETS), eb_labels, rows,
        )
        + "\n\n"
        + format_grid(
            "  (encr_huffman_raw: the literal Algorithm-1 pipeline, "
            "no tree pre-deflate)",
            list(TABLE_DATASETS), eb_labels, raw_rows,
        ),
    )
    flat = [v for row in rows for v in row]
    raw_flat = [v for row in raw_rows for v in row]
    mean = sum(flat) / len(flat)
    raw_mean = sum(raw_flat) / len(raw_flat)
    # Near-baseline cost, clearly under the other schemes' territory.
    assert 97.0 < mean < 103.0
    assert max(flat) < 110.0
    # The raw variant skips the tree-deflate work, so it must not be
    # slower than the default on average (this is the paper's
    # below-baseline mechanism at work).
    assert raw_mean <= mean + 0.5

    data = dataset_cache("t", size=BENCH_SIZE)
    benchmark.pedantic(
        lambda: measure_overhead_paired(
            np.asarray(data), "encr_huffman", 1e-4, repeats=1
        ),
        rounds=3, iterations=1,
    )


def test_encr_huffman_cheaper_than_cmpr_encr_on_hard_data(eb_labels):
    """The paper's bottom line where the cost gap is real: on
    hard-to-compress data at tight bounds, Cmpr-Encr encrypts the
    near-incompressible full stream while Encr-Huffman touches only
    the tree."""
    data = np.asarray(dataset_cache("nyx", size=BENCH_SIZE))
    huff = measure_overhead_paired(data, "encr_huffman", 1e-7, repeats=5)
    full = measure_overhead_paired(data, "cmpr_encr", 1e-7, repeats=5)
    assert huff < full
