"""Fig. 3 — binary images of Nyx (gray = unpredictable, black =
predictable) at error bounds 1e-7 and 1e-3.

Writes the central-slice masks as PGM images to
``benchmarks/results/`` and checks the paper's visual claim: at 1e-7
predictable (black) points are a scattered minority; at 1e-3 they
dominate the image.
"""

import os

import numpy as np

from repro.bench.figures import mask_summary, predictability_mask, write_pgm
from repro.bench.harness import dataset_cache
from repro.bench.tables import format_comparison

from conftest import BENCH_SIZE, RESULTS_DIR, emit


def test_fig3_masks(benchmark):
    data = np.asarray(dataset_cache("nyx", size=BENCH_SIZE))
    summaries = {}
    os.makedirs(RESULTS_DIR, exist_ok=True)
    for eb, label in ((1e-7, "1e-7"), (1e-3, "1e-3")):
        mask = predictability_mask(data, eb)
        summaries[label] = mask_summary(mask)
        write_pgm(
            os.path.join(RESULTS_DIR, f"fig3_nyx_eb{label}.pgm"),
            mask[mask.shape[0] // 2],
        )

    emit(
        "fig3_predictability_masks",
        format_comparison(
            "Fig. 3: Nyx predictable-point fraction "
            "(PGM slices in benchmarks/results/)",
            [
                ("eb=1e-7 (paper: ~7% predictable)", 0.072,
                 summaries["1e-7"]["predictable_fraction"]),
                ("eb=1e-3 (paper: ~96% predictable)", 0.96,
                 summaries["1e-3"]["predictable_fraction"]),
            ],
        ),
    )
    assert summaries["1e-7"]["predictable_fraction"] < 0.35
    assert summaries["1e-3"]["predictable_fraction"] > 0.90

    benchmark.pedantic(
        lambda: predictability_mask(data, 1e-3), rounds=3, iterations=1
    )
