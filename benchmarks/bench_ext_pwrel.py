"""Extension — point-wise relative bounds on the log-normal dataset.

Nyx-style density fields span many orders of magnitude, which is the
textbook case for SZ's point-wise-relative mode: an absolute bound
tight enough for the voids wastes precision on the halos.  This
benchmark compares ``pw_rel`` against the absolute bound needed to
give the smallest values the same relative fidelity, and verifies the
schemes ride along unchanged.
"""

import numpy as np

from repro.bench.harness import KEY, dataset_cache
from repro.bench.tables import format_grid
from repro.core.pipeline import SecureCompressor
from repro.sz.quantizer import ErrorBound

from conftest import BENCH_SIZE, emit

REL_TARGETS = (1e-1, 1e-2, 1e-3)


def test_pwrel_vs_abs(benchmark):
    data = np.asarray(dataset_cache("nyx", size=BENCH_SIZE))
    nz = data[data != 0]
    min_mag = float(np.abs(nz).min())
    rows = []
    for r in REL_TARGETS:
        pw = SecureCompressor(
            "encr_huffman", ErrorBound(r, "pw_rel"), key=KEY,
            random_state=np.random.default_rng(1),
        )
        res_pw = pw.compress(data)
        out = pw.decompress(res_pw.container)
        rel_err = float(np.max(
            np.abs(out[data != 0].astype(np.float64) - nz.astype(np.float64))
            / np.abs(nz.astype(np.float64))
        ))
        assert rel_err <= r

        # The absolute bound matching the smallest value's fidelity.
        ab = SecureCompressor(
            "encr_huffman", ErrorBound(max(r * min_mag, 1e-12), "abs"),
            key=KEY, random_state=np.random.default_rng(1),
        )
        res_ab = ab.compress(data)
        rows.append([
            data.nbytes / res_pw.compressed_bytes,
            data.nbytes / res_ab.compressed_bytes,
            rel_err,
        ])
    emit(
        "ext_pwrel",
        format_grid(
            f"pw_rel vs matching abs bound on nyx (size={BENCH_SIZE}, "
            f"min |x| = {min_mag:.2e})",
            [f"r={r:g}" for r in REL_TARGETS],
            ["CR (pw_rel)", "CR (abs match)", "max rel err"],
            rows, corner="Target",
        ),
    )
    # pw_rel must beat the fidelity-matched absolute bound decisively
    # on log-normal data.
    for (cr_pw, cr_ab, _), r in zip(rows, REL_TARGETS):
        assert cr_pw > cr_ab, r

    benchmark.pedantic(
        lambda: SecureCompressor(
            "encr_huffman", ErrorBound(1e-2, "pw_rel"), key=KEY
        ).compress(data),
        rounds=3, iterations=1,
    )
