"""Kernel-level throughput benchmarks (regression tracking).

Not a paper artifact: these pin the performance of the hot kernels the
whole system is built from, so optimization work (like the table-driven
Huffman decoder rewrite) has a measured baseline.  pytest-benchmark's
comparison mode (``--benchmark-autosave`` / ``--benchmark-compare``)
turns these into a simple regression harness.
"""

import numpy as np
import pytest

from repro.crypto import batch, modes
from repro.crypto.keyschedule import expand_key
from repro.sz import huffman
from repro.sz.intcodec import byteplane_decode, byteplane_encode
from repro.sz.predictors import lorenzo_reconstruct, lorenzo_residuals

EK = expand_key(bytes(range(16)))
RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def grid_q():
    return RNG.integers(-1000, 1000, size=(64, 64, 64)).astype(np.int64)


@pytest.fixture(scope="module")
def skewed_values():
    vals = RNG.zipf(1.6, size=200_000).astype(np.int64)
    return np.clip(vals, 1, 1 << 18)


def test_kernel_lorenzo_forward(benchmark, grid_q):
    benchmark(lorenzo_residuals, grid_q)


def test_kernel_lorenzo_inverse(benchmark, grid_q):
    res = lorenzo_residuals(grid_q)
    out = benchmark(lorenzo_reconstruct, res)
    assert np.array_equal(out, grid_q)


def test_kernel_huffman_encode(benchmark, skewed_values):
    symbols, counts = np.unique(skewed_values, return_counts=True)
    code = huffman.build_code(symbols, counts)
    packed = benchmark(huffman.encode, skewed_values, code)
    assert packed.n_bits > 0


def test_kernel_huffman_decode(benchmark, skewed_values):
    symbols, counts = np.unique(skewed_values, return_counts=True)
    code = huffman.build_code(symbols, counts)
    packed = huffman.encode(skewed_values, code)
    out = benchmark.pedantic(
        lambda: huffman.decode(packed, code, skewed_values.size),
        rounds=3, iterations=1,
    )
    assert np.array_equal(out, skewed_values)


def test_kernel_aes_batch_ecb(benchmark):
    blocks = RNG.integers(0, 256, size=(4096, 16), dtype=np.uint8)
    enc = benchmark(batch.encrypt_blocks, blocks, EK)
    assert enc.shape == blocks.shape


def test_kernel_aes_cbc_encrypt(benchmark):
    payload = bytes(64 * 1024)
    ct = benchmark.pedantic(
        lambda: modes.cbc_encrypt(payload, EK, bytes(16)),
        rounds=3, iterations=1,
    )
    assert len(ct) == 64 * 1024 + 16


def test_kernel_byteplane(benchmark):
    vals = RNG.integers(-(2**20), 2**20, size=100_000).astype(np.int64)
    blob = benchmark(byteplane_encode, vals)
    assert np.array_equal(byteplane_decode(blob), vals)
