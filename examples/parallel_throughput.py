#!/usr/bin/env python3
"""Slab-parallel secure compression across worker processes.

The paper measures single-thread performance; on an HPC node each rank
(or here, each worker process) can own an axis-0 slab and run the whole
compress+encrypt pipeline independently.  This example measures the
scaling of Encr-Huffman over worker counts.

Run:  python examples/parallel_throughput.py
"""

import time

import numpy as np

from repro.datasets import generate
from repro.parallel import ChunkedSecureCompressor

KEY = bytes(range(16))


def main() -> None:
    data = generate("t", size="small")
    print(f"field: {data.shape} = {data.nbytes / 1e6:.1f} MB")

    results = {}
    for workers in (1, 2, 4):
        csc = ChunkedSecureCompressor(
            scheme="encr_huffman",
            error_bound=1e-4,
            key=KEY,
            n_chunks=max(4, workers),
            n_workers=workers,
            base_seed=0,
        )
        t0 = time.perf_counter()
        blob = csc.compress(data)
        t_comp = time.perf_counter() - t0
        t0 = time.perf_counter()
        out = csc.decompress(blob)
        t_decomp = time.perf_counter() - t0
        err = float(np.max(np.abs(out.astype(np.float64)
                                  - data.astype(np.float64))))
        assert err <= 1e-4
        results[workers] = (t_comp, t_decomp)
        print(f"workers={workers}: compress {t_comp:.2f}s "
              f"({data.nbytes / 1e6 / t_comp:.1f} MB/s), "
              f"decompress {t_decomp:.2f}s, CR "
              f"{data.nbytes / len(blob):.2f}, bound OK")

    base = results[1][0]
    for workers, (t_comp, _) in results.items():
        print(f"speedup x{base / t_comp:.2f} at {workers} workers")
    print("\n(Worker processes pay serialization + startup overhead; "
          "speedups grow with the field size — try size='medium'.)")


if __name__ == "__main__":
    main()
