#!/usr/bin/env python3
"""One scheme, three codecs: the section contract in action.

The paper's schemes never look inside the compressor — they transform
named byte sections.  Anything that exposes its Huffman tree as the
``tree`` section gets Encr-Huffman for free.  This example runs the
same field (and an image) through all three codecs in this repo:

  * ``repro.sz``         — the SZ-1.4 prediction pipeline,
  * ``repro.multilevel`` — the MGARD-like multilevel decomposition,
  * ``repro.imagecodec`` — the JPEG-like DCT codec,

each protected by Encr-Huffman, and reports ratio / error / how little
each actually encrypted.

Run:  python examples/codec_zoo.py
"""

import numpy as np

from repro import SecureCompressor
from repro.crypto.aes import derive_key
from repro.datasets import generate
from repro.imagecodec import SecureImageCompressor, synthetic_image
from repro.multilevel import SecureMultilevelCompressor

KEY = derive_key("codec zoo")


def main() -> None:
    field = generate("q2", size="tiny")
    eb = 1e-3
    print(f"field: q2 {field.shape} ({field.nbytes / 1024:.0f} KiB), "
          f"eb={eb:g}\n")
    print(f"{'codec':12s} {'out bytes':>10s} {'CR':>8s} {'max err':>10s} "
          f"{'AES bytes':>10s}")

    # SZ pipeline.
    sz = SecureCompressor("encr_huffman", eb, key=KEY)
    result = sz.compress(field)
    out = sz.decompress(result.container)
    err = np.abs(out.astype(np.float64) - field.astype(np.float64)).max()
    print(f"{'sz':12s} {result.compressed_bytes:10d} "
          f"{field.nbytes / result.compressed_bytes:8.2f} {err:10.2e} "
          f"{result.encrypted_bytes:10d}")

    # Multilevel (MGARD-like) pipeline.
    ml = SecureMultilevelCompressor("encr_huffman", eb, key=KEY)
    blob = ml.compress(field)
    out = ml.decompress(blob)
    err = np.abs(out.astype(np.float64) - field.astype(np.float64)).max()
    tree = ml.last_stats.section_bytes["tree"]
    print(f"{'multilevel':12s} {len(blob):10d} "
          f"{field.nbytes / len(blob):8.2f} {err:10.2e} {tree:10d}")

    # JPEG-like pipeline (on an image, its native domain).
    img = synthetic_image("scene", 128)
    im = SecureImageCompressor("encr_huffman", quality=80, key=KEY)
    res = im.compress(img)
    out = im.decompress(res.container)
    rmse = float(np.sqrt(np.mean((out - img) ** 2)))
    print(f"{'image(jpeg)':12s} {res.compressed_bytes:10d} "
          f"{img.size / res.compressed_bytes:8.2f} {rmse:10.2e} "
          f"{res.encrypted_bytes:10d}   (scene 128x128, q=80, RMSE)")

    print(
        "\nEvery codec encrypted only its (deflated) Huffman tree — tens\n"
        "of bytes to a few KiB — yet none of the three streams can be\n"
        "decoded without the key: recovering Huffman-coded data without\n"
        "its code table is NP-hard (paper Sec. IV-C)."
    )


if __name__ == "__main__":
    main()
