#!/usr/bin/env python3
"""Secure gradient compression for federated learning (paper Sec. III-C).

"The combination of compression and encryption can be used to
accelerate model transmission while also preventing unauthorized
alterations."  This example simulates exactly that: several clients
train a logistic-regression model on private shards; every round each
client ships its gradient to the server *compressed with an error
bound and protected with Encr-Huffman + an authentication tag*.  The
run compares the secured-compressed federation against a plaintext
float64 baseline — accuracy must match while transmission shrinks.

Run:  python examples/federated_gradients.py
"""

import numpy as np

from repro import SecureCompressor
from repro.crypto.aes import derive_key

N_CLIENTS = 4
ROUNDS = 30
FEATURES = 64
SAMPLES_PER_CLIENT = 400
EB = 1e-4
LR = 0.5


def make_shards(rng):
    true_w = rng.standard_normal(FEATURES)
    shards = []
    for _ in range(N_CLIENTS):
        x = rng.standard_normal((SAMPLES_PER_CLIENT, FEATURES))
        logits = x @ true_w + 0.3 * rng.standard_normal(SAMPLES_PER_CLIENT)
        y = (logits > 0).astype(np.float64)
        shards.append((x, y))
    return shards, true_w


def gradient(w, x, y):
    pred = 1.0 / (1.0 + np.exp(-(x @ w)))
    return x.T @ (pred - y) / len(y)


def accuracy(w, shards):
    correct = total = 0
    for x, y in shards:
        pred = (x @ w) > 0
        correct += int((pred == y).sum())
        total += len(y)
    return correct / total


def federate(shards, channel):
    """One federation; ``channel(grad) -> (grad', bytes_on_wire)``."""
    w = np.zeros(FEATURES)
    wire_bytes = 0
    for _ in range(ROUNDS):
        agg = np.zeros(FEATURES)
        for x, y in shards:
            g = gradient(w, x, y)
            g_recv, nbytes = channel(g)
            agg += g_recv
            wire_bytes += nbytes
        w -= LR * agg / N_CLIENTS
    return w, wire_bytes


def main() -> None:
    rng = np.random.default_rng(7)
    shards, _ = make_shards(rng)

    def plain_channel(g):
        return g, g.nbytes

    sc = SecureCompressor(
        scheme="encr_huffman",
        error_bound=EB,
        key=derive_key("federation-round-key"),
        authenticate=True,   # gradients must not be silently altered
    )

    def secure_channel(g):
        result = sc.compress(np.ascontiguousarray(g))
        restored = sc.decompress(result.container)
        return restored, len(result.container)

    w_plain, bytes_plain = federate(shards, plain_channel)
    w_secure, bytes_secure = federate(shards, secure_channel)

    acc_plain = accuracy(w_plain, shards)
    acc_secure = accuracy(w_secure, shards)
    print(f"rounds={ROUNDS}, clients={N_CLIENTS}, eb={EB:g}")
    print(f"plaintext federation : acc={acc_plain:.4f}, "
          f"{bytes_plain / 1024:.1f} KiB on the wire")
    print(f"secured federation   : acc={acc_secure:.4f}, "
          f"{bytes_secure / 1024:.1f} KiB on the wire "
          f"({bytes_plain / bytes_secure:.2f}x smaller)")
    print(f"weight drift         : "
          f"{np.abs(w_plain - w_secure).max():.2e} (bounded per round)")
    assert abs(acc_plain - acc_secure) < 0.01


if __name__ == "__main__":
    main()
