#!/usr/bin/env python3
"""Profile a secure compression with the trace layer.

Records the full span tree (stage wall times + byte flow) and the
process-wide counters for one compress/decompress round trip, prints
the tree, and writes both export formats:

* ``trace.json``        — the ``repro-trace/1`` document
                          (schema in docs/OBSERVABILITY.md)
* ``trace.chrome.json`` — Chrome trace-event format; drop it onto
                          chrome://tracing or https://ui.perfetto.dev
                          for a flame-graph view

Run:  python examples/trace_profile.py
"""

import json

import numpy as np

from repro import SecureCompressor
from repro.core import trace
from repro.crypto.aes import derive_key


def main() -> None:
    # The same toy field as examples/quickstart.py.
    x = np.linspace(0.0, 4.0 * np.pi, 64, dtype=np.float64)
    gx, gy, gz = np.meshgrid(x[:32], x, x, indexing="ij")
    field = (np.sin(gx) * np.cos(gy) + 0.05 * gz).astype(np.float32)

    sc = SecureCompressor(
        scheme="encr_huffman",
        error_bound=1e-4,
        key=derive_key("correct horse battery staple"),
    )

    # One Tracer can span any number of operations; every top-level
    # call becomes a root span, and counters report the delta over the
    # tracer's lifetime.
    tracer = trace.Tracer()
    result = sc.compress(field, tracer=tracer)
    restored = sc.decompress(result.container, tracer=tracer)
    assert np.max(np.abs(restored - field)) <= 1e-4

    doc = trace.validate(tracer.export())
    print(trace.format_tree(doc))

    with open("trace.json", "w") as fh:
        json.dump(doc, fh, indent=2)
    with open("trace.chrome.json", "w") as fh:
        json.dump(trace.chrome_trace(doc), fh)
    print("\nwrote trace.json and trace.chrome.json "
          "(open the latter in chrome://tracing or ui.perfetto.dev)")

    # The spans answer "where did the time go"; the counters answer
    # "how much work happened": AES blocks, zlib bytes, decoder cache
    # behaviour — aggregated process-wide, reported as deltas.
    encrypted = doc["counters"].get("aes.blocks_encrypted", 0) * 16
    print(f"\nAES touched {encrypted} bytes "
          f"({100.0 * encrypted / field.nbytes:.3f}% of the field) — "
          "the Encr-Huffman bargain in one number.")


if __name__ == "__main__":
    main()
