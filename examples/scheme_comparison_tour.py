#!/usr/bin/env python3
"""A guided tour of the three combination schemes.

Compresses an easy dataset (Q2 humidity) and a hard one (Nyx dark
matter) under all four methods and prints the trade-off table the
paper's Section V builds up to: Cmpr-Encr buys full-stream randomness
with bandwidth, Encr-Quant is a gamble that depends on the data, and
Encr-Huffman is the light-weight sweet spot.

Run:  python examples/scheme_comparison_tour.py
"""

import numpy as np

from repro.bench.harness import measure_scheme
from repro.bench.tables import format_grid
from repro.datasets import generate
from repro.security.entropy import shannon_entropy
from repro.core.pipeline import SecureCompressor

KEY = bytes(range(16))
EB = 1e-4
SCHEMES = ("none", "cmpr_encr", "encr_quant", "encr_huffman")


def tour(name: str) -> None:
    data = generate(name, size="tiny")
    rows = []
    for scheme in SCHEMES:
        m = measure_scheme(data, scheme, EB, repeats=3, key=KEY)
        sc = SecureCompressor(scheme, EB,
                              key=KEY if scheme != "none" else None)
        blob = sc.compress(np.asarray(data)).container
        rows.append([
            m.cr,
            m.compress_bw,
            m.decompress_bw,
            m.encrypted_bytes / 1024.0,
            shannon_entropy(blob),
        ])
    print()
    print(format_grid(
        f"{name} @ eb={EB:g} — the paper's trade-off space",
        list(SCHEMES),
        ["CR", "comp MB/s", "decomp MB/s", "AES KiB", "entropy b/B"],
        rows,
        corner="Scheme",
        precision=2,
    ))


def main() -> None:
    for name in ("q2", "nyx"):
        tour(name)
    print(
        "\nReading the tables:\n"
        "  * encr_quant's CR collapses on q2 (compressible) but not on\n"
        "    nyx — the paper's central Encr-Quant caveat;\n"
        "  * encr_huffman encrypts a few KiB at most and stays at the\n"
        "    baseline CR and bandwidth;\n"
        "  * cmpr_encr's output entropy is ~8 bits/byte (fully random),\n"
        "    the others' streams stay structured."
    )


if __name__ == "__main__":
    main()
