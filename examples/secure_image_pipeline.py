#!/usr/bin/env python3
"""The paper's generalization claim, live: Encr-Huffman on a JPEG-like
image codec.

Sec. IV: "our ideas can be translated into developing white-box
integrations ... for any compressor that leverages Huffman encoding
(e.g., MGARD and JPEG)".  The image codec in ``repro.imagecodec``
exposes its Huffman tree as a section exactly like the SZ pipeline
does, so the same scheme objects protect images without modification.

Run:  python examples/secure_image_pipeline.py
"""

import numpy as np

from repro.core.metrics import psnr
from repro.crypto.aes import derive_key
from repro.imagecodec import SecureImageCompressor, synthetic_image


def main() -> None:
    key = derive_key("image-archive")
    img = synthetic_image("scene", 192)
    print(f"image: {img.shape}, values [{img.min():.0f}, {img.max():.0f}]")

    print(f"\n{'scheme':14s} {'bytes':>8s} {'CR':>8s} {'AES bytes':>10s} "
          f"{'PSNR dB':>8s}")
    for scheme in ("none", "cmpr_encr", "encr_quant", "encr_huffman"):
        sic = SecureImageCompressor(
            scheme, quality=80, key=key if scheme != "none" else None
        )
        result = sic.compress(img)
        out = sic.decompress(result.container)
        print(
            f"{scheme:14s} {result.compressed_bytes:8d} "
            f"{img.size / result.compressed_bytes:8.2f} "
            f"{result.encrypted_bytes:10d} {psnr(img, out):8.2f}"
        )

    sic = SecureImageCompressor("encr_huffman", quality=80, key=key)
    result = sic.compress(img)
    stats = result.stats
    print(
        f"\nencr_huffman encrypted only the token-tree section: "
        f"{result.encrypted_bytes} bytes "
        f"({stats.tree_fraction_of_quant:.1%} of the token stream), "
        f"yet without it an attacker faces an NP-hard decoding problem "
        f"for all {stats.n_tokens} tokens."
    )

    thief = SecureImageCompressor("encr_huffman", quality=80,
                                  key=derive_key("guess"))
    try:
        thief.decompress(result.container)
        print("!!! wrong key somehow decoded the image")
    except ValueError:
        print("wrong key: rejected, as expected")


if __name__ == "__main__":
    main()
