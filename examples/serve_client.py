#!/usr/bin/env python3
"""Round-trip the ``secz serve`` daemon with the SECP client.

Boots an in-process daemon on a unix socket (the same code path
``secz serve`` runs), submits a batch of statistically similar fields,
waits for the containers, verifies a decompression round trip against
the error bound, and prints the STAT document — the codec-cache hit
rate shows the daemon's warm-state win over one-shot CLI calls.

Point ``--socket`` at an already-running daemon to use this as a real
client instead (the daemon must then hold the same passphrase):

Run:  python examples/serve_client.py [--socket /run/secz.sock]
"""

import argparse
import contextlib
import json
import os
import tempfile

import numpy as np

from repro import SecureCompressor
from repro.crypto.aes import derive_key
from repro.service import ServiceClient, ServiceConfig, serve_in_background

ERROR_BOUND = 1e-3
PASSPHRASE = "correct horse battery staple"


def make_fields(n: int, side: int) -> list[np.ndarray]:
    """``n`` smooth fields drawn from one statistical family."""
    x = np.linspace(0.0, 4.0 * np.pi, side, dtype=np.float64)
    gx, gy, gz = np.meshgrid(x, x, x, indexing="ij")
    base = (np.sin(gx) * np.cos(gy) + 0.05 * gz).astype(np.float32)
    return [base + np.float32(0.5 * i) for i in range(n)]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--socket", default=None,
                        help="connect to a running daemon instead of "
                             "booting one in-process")
    parser.add_argument("--fields", type=int, default=4)
    parser.add_argument("--side", type=int, default=24,
                        help="cube side length per field")
    args = parser.parse_args()

    fields = make_fields(args.fields, args.side)
    key = derive_key(PASSPHRASE)

    with contextlib.ExitStack() as stack:
        if args.socket is None:
            tmp = stack.enter_context(tempfile.TemporaryDirectory())
            socket_path = os.path.join(tmp, "secz.sock")
            config = ServiceConfig(scheme="encr_huffman",
                                   error_bound=ERROR_BOUND, key=key)
            stack.enter_context(serve_in_background(
                config, os.path.join(tmp, "jobs.sqlite"),
                socket_path=socket_path,
            ))
        else:
            socket_path = args.socket
        client = stack.enter_context(ServiceClient(socket_path))

        client.ping()
        # Two rounds over the same fields model a steady-state stream
        # of statistically similar data: round one warms the canonical
        # codec cache, round two is served from it.
        warmup_ids = [client.submit(field) for field in fields]
        for jid in warmup_ids:
            client.wait(jid)
        job_ids = [client.submit(field) for field in fields]
        print(f"submitted {len(warmup_ids) + len(job_ids)} jobs: "
              + ", ".join(jid.hex() for jid in job_ids))

        containers = [client.wait(jid) for jid in job_ids]
        for jid, container in zip(job_ids, containers):
            kind = container[:4].decode()
            print(f"  {jid.hex()}: {kind} container, {len(container)} bytes "
                  f"(state {client.status(jid)})")

        stat = client.stat()
        print("\nSTAT:")
        print(json.dumps(stat, indent=2, sort_keys=True))

        # The served containers are ordinary SECZ blobs — decompress
        # with the library and check the error bound end to end.
        sc = SecureCompressor(scheme="encr_huffman",
                              error_bound=ERROR_BOUND, key=key)
        worst = max(
            float(np.abs(sc.decompress(container) - field).max())
            for container, field in zip(containers, fields)
        )
        print(f"\nround trip max error: {worst:.2e} "
              f"(bound {ERROR_BOUND:.0e})")
        assert worst <= ERROR_BOUND
        assert stat["jobs"]["failed"] == 0

        cache = stat["codec_cache"]
        print(f"codec cache: {cache['hits']} hits / {cache['misses']} "
              f"misses (hit rate {cache['hit_rate']:.0%}) — similar "
              "fields reused each other's canonical codecs.")


if __name__ == "__main__":
    main()
