#!/usr/bin/env python3
"""Quickstart: compress a scientific field with an error bound and
encrypt the critical part of the stream in one step.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SecureCompressor
from repro.crypto.aes import derive_key


def main() -> None:
    # A toy "simulation output": a smooth 3-D pressure-like field.
    x = np.linspace(0.0, 4.0 * np.pi, 64, dtype=np.float64)
    gx, gy, gz = np.meshgrid(x[:32], x, x, indexing="ij")
    field = (np.sin(gx) * np.cos(gy) + 0.05 * gz).astype(np.float32)
    print(f"original field : {field.shape} {field.dtype} = "
          f"{field.nbytes / 1024:.1f} KiB")

    # The paper's recommended scheme: SZ with only the Huffman tree
    # encrypted (Encr-Huffman).  The key can come from a passphrase.
    sc = SecureCompressor(
        scheme="encr_huffman",
        error_bound=1e-3,            # absolute bound, SZ's "abs" mode
        key=derive_key("correct horse battery staple"),
    )

    result = sc.compress(field)
    print(f"container      : {result.compressed_bytes / 1024:.1f} KiB "
          f"(CR {field.nbytes / result.compressed_bytes:.1f}x)")
    print(f"bytes encrypted: {result.encrypted_bytes} "
          f"(the serialized Huffman tree only)")
    print(f"predictable    : {result.sz_stats.predictable_fraction:.1%} "
          f"of points")

    restored = sc.decompress(result.container)
    err = float(np.max(np.abs(restored.astype(np.float64) - field)))
    print(f"max abs error  : {err:.2e} (bound 1e-3 -> "
          f"{'OK' if err <= 1e-3 else 'VIOLATED'})")

    # Without the key, the container is useless: the tree is ciphertext
    # and recovering Huffman-coded data without its code table is
    # NP-hard.
    thief = SecureCompressor(scheme="encr_huffman", error_bound=1e-3,
                             key=derive_key("wrong password"))
    try:
        thief.decompress(result.container)
        print("!!! wrong key somehow decoded the data")
    except ValueError as exc:
        print(f"wrong key      : rejected ({exc.__class__.__name__})")


if __name__ == "__main__":
    main()
