#!/usr/bin/env python3
"""A full secure-archiving workflow for a climate-style dataset.

Scenario (paper Sec. III): a lab must archive a temperature field so
that (a) it fits the storage budget, (b) a leaked archive does not
expose the data, and (c) tampering is detected rather than silently
propagated into downstream science.

Steps:
  1. generate the field (synthetic SCALE-LetKF temperature);
  2. ask the advisor which combination scheme fits the requirements;
  3. compress + encrypt, with an integrity digest;
  4. simulate an attacker flipping one bit of the archive;
  5. show the flip is caught, then restore from the intact copy and
     verify the error bound.

Run:  python examples/secure_archive_workflow.py
"""

import hashlib

import numpy as np

from repro import SecureCompressor, recommend_scheme
from repro.crypto.aes import derive_key
from repro.datasets import generate
from repro.security.attacks import flip_bit


def main() -> None:
    field = generate("t", size="tiny")
    eb = 1e-4
    print(f"archiving T field {field.shape}, eb={eb:g}")

    # 1. Scheme choice, from the data's own properties.
    rec = recommend_scheme(field, eb, ratio_critical=True)
    print(f"\nadvisor -> {rec.scheme}")
    for reason in rec.reasons:
        print(f"  - {reason}")

    # 2. Compress + encrypt.
    key = derive_key("lab-archive-2026")
    sc = SecureCompressor(scheme=rec.scheme, error_bound=eb, key=key)
    result = sc.compress(field)
    digest = hashlib.sha256(result.container).hexdigest()
    print(f"\narchive: {result.compressed_bytes} bytes "
          f"(CR {field.nbytes / result.compressed_bytes:.1f}x), "
          f"{result.encrypted_bytes} bytes through AES")
    print(f"sha256 : {digest[:32]}...")

    # 3. An attacker flips one bit somewhere in the archive.
    tampered = flip_bit(result.container, bit_index=8 * 200 + 3)
    if hashlib.sha256(tampered).hexdigest() != digest:
        print("\ntamper check: digest mismatch -> archive rejected")
    try:
        sc.decompress(tampered)
        print("(decompression of the tampered copy happened to succeed "
              "- this is why the digest check matters)")
    except ValueError as exc:
        print(f"(decompression also failed outright: {exc})")

    # 4. Restore from the intact copy.
    restored = sc.decompress(result.container)
    err = float(np.max(np.abs(restored.astype(np.float64)
                              - field.astype(np.float64))))
    print(f"\nrestored: max abs error {err:.2e} <= {eb:g}: {err <= eb}")

    # 5. Downstream check: a derived quantity survives the lossy step.
    mean_profile_orig = field.mean(axis=(0, 2, 3))
    mean_profile_rest = restored.mean(axis=(0, 2, 3))
    drift = float(np.max(np.abs(mean_profile_orig - mean_profile_rest)))
    print(f"vertical mean-temperature profile drift: {drift:.2e} K")


if __name__ == "__main__":
    main()
