#!/usr/bin/env python3
"""Audit the randomness of secure-compressed output with the NIST
SP800-22 suite — the paper's Table VI experiment as a utility.

A security office asks: "if this archive leaks, does it *look* like
ciphertext?"  For Cmpr-Encr the answer is yes; for the white-box
schemes the answer is deliberately no (they trade full-stream
randomness for bandwidth, relying on the NP-hardness of decoding
Huffman data without its tree).

Run:  python examples/randomness_audit.py        (~1 minute)
"""

import numpy as np

from repro.core.pipeline import SecureCompressor
from repro.datasets import generate
from repro.security.entropy import local_entropy_profile
from repro.security.nist import run_suite

KEY = bytes(range(16))
#: A fast, discriminating subset of the 15 tests (the full suite runs
#: in the Table VI benchmark).
TESTS = ("frequency", "block_frequency", "runs", "serial",
         "approximate_entropy", "cumulative_sums")


def audit(scheme: str, data, eb: float) -> None:
    sc = SecureCompressor(scheme, eb, key=KEY,
                          random_state=np.random.default_rng(1))
    blob = sc.compress(np.asarray(data)).container
    result = run_suite(blob, n_streams=8, tests=TESTS)
    verdict = "ciphertext-like" if result.all_pass else "structured"
    print(f"\n=== {scheme} ({len(blob)} bytes) -> {verdict}")
    print(result.format_table())
    profile = local_entropy_profile(blob, block_bytes=4096)
    print(f"local entropy: min {profile.min():.2f}, "
          f"max {profile.max():.2f} bits/byte over "
          f"{len(profile)} blocks")


def main() -> None:
    data = generate("q2", size="small")
    for scheme in ("cmpr_encr", "encr_quant", "encr_huffman"):
        audit(scheme, data, 1e-5)


if __name__ == "__main__":
    main()
